// Adversarial scenario profiles for the chaos suite (estguard evaluation).
//
// Each scenario perturbs the baseline random-surfer workload in a way that
// stresses one assumption of the Markov estimator:
//
//   - flash-crowd: a burst window redirects most session entries onto one
//     document, shifting the top-K request profile (drift detection).
//   - diurnal: the arrival rate and the remote entry preference swing with
//     a 24 h cycle, so a snapshot frozen at night misfits the day (drift
//     detection + safe refresh).
//   - crawler: breadth-first robots walk the site with metronomic gaps and
//     no embedded-object fetches, injecting one-count transition pairs
//     that poison P[i,j] (classification + quarantine).
//   - long-tail-scan: scanners enumerate the document space in ID order,
//     inflating the estimator with transitions no human will follow
//     (classification + trust damping).
//   - multi-tenant: entry pages are partitioned among tenants whose
//     partition rotates daily, so row support is split and stale rows
//     linger (trust damping + snapshot judging).
//
// All scenario traffic is drawn from the dedicated "scenario" RNG stream,
// so enabling a scenario never perturbs the baseline surfer draws: the
// clean part of a scenario trace is request-for-request identical to the
// trace generated with ScenarioNone (modulo diurnal thinning, which
// consumes one extra acceptance draw per arrival from its own stream).
package synth

import (
	"fmt"
	"math"
	"time"

	"specweb/internal/stats"
	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

// ScenarioKind selects one adversarial workload profile.
type ScenarioKind int

const (
	ScenarioNone ScenarioKind = iota
	ScenarioFlashCrowd
	ScenarioDiurnal
	ScenarioCrawler
	ScenarioLongTailScan
	ScenarioMultiTenant
)

// String returns the CLI name of the scenario.
func (k ScenarioKind) String() string {
	switch k {
	case ScenarioNone:
		return "none"
	case ScenarioFlashCrowd:
		return "flash-crowd"
	case ScenarioDiurnal:
		return "diurnal"
	case ScenarioCrawler:
		return "crawler"
	case ScenarioLongTailScan:
		return "long-tail-scan"
	case ScenarioMultiTenant:
		return "multi-tenant"
	}
	return fmt.Sprintf("ScenarioKind(%d)", int(k))
}

// ScenarioNames lists the valid CLI names, ScenarioNone first.
func ScenarioNames() []string {
	return []string{"none", "flash-crowd", "diurnal", "crawler", "long-tail-scan", "multi-tenant"}
}

// ScenarioByName resolves a CLI name ("" and "none" mean no scenario).
func ScenarioByName(name string) (ScenarioKind, error) {
	switch name {
	case "", "none":
		return ScenarioNone, nil
	case "flash-crowd":
		return ScenarioFlashCrowd, nil
	case "diurnal":
		return ScenarioDiurnal, nil
	case "crawler":
		return ScenarioCrawler, nil
	case "long-tail-scan":
		return ScenarioLongTailScan, nil
	case "multi-tenant":
		return ScenarioMultiTenant, nil
	}
	return ScenarioNone, fmt.Errorf("synth: unknown scenario %q (valid: %v)", name, ScenarioNames())
}

// Scenario parameterizes one adversarial profile. The zero value disables
// scenario traffic; DefaultScenario fills the knobs for a kind.
type Scenario struct {
	Kind ScenarioKind

	// Flash crowd: during the window starting at FlashStart (fraction of
	// the horizon) and lasting FlashDuration (fraction), FlashFraction of
	// new sessions open on the single flash document.
	FlashStart    float64
	FlashDuration float64
	FlashFraction float64

	// Diurnal: arrivals are thinned by up to DiurnalAmplitude at the night
	// trough, and night sessions draw entries from a permuted preference
	// order (a different audience is awake).
	DiurnalAmplitude float64

	// Crawler: Crawlers robots each run CrawlsPerDay breadth-first walks of
	// PagesPerCrawl pages with a constant CrawlerGap seconds between page
	// fetches and no embedded-object requests.
	Crawlers      int
	CrawlsPerDay  float64
	PagesPerCrawl int
	CrawlerGap    float64

	// Long-tail scan: Scanners probes each sweep the document space in ID
	// order with a constant ScanGap seconds between requests.
	Scanners int
	ScanGap  float64

	// Multi-tenant: entry pages are split into Tenants contiguous
	// partitions; each client is pinned to a tenant and the partition
	// assignment rotates by one slot per simulated day.
	Tenants int
}

// DefaultScenario returns the committed knob settings for a kind. These are
// the values the specbench scenario gate's golden baselines were recorded
// with; change them only together with the baselines.
func DefaultScenario(kind ScenarioKind) Scenario {
	s := Scenario{Kind: kind}
	switch kind {
	case ScenarioFlashCrowd:
		s.FlashStart = 0.6
		s.FlashDuration = 0.15
		s.FlashFraction = 0.8
	case ScenarioDiurnal:
		s.DiurnalAmplitude = 0.7
	case ScenarioCrawler:
		s.Crawlers = 6
		s.CrawlsPerDay = 2
		s.PagesPerCrawl = 150
		s.CrawlerGap = 0.5
	case ScenarioLongTailScan:
		s.Scanners = 4
		s.ScanGap = 1.0
	case ScenarioMultiTenant:
		s.Tenants = 4
	}
	return s
}

func (s *Scenario) validate() error {
	switch s.Kind {
	case ScenarioNone:
		return nil
	case ScenarioFlashCrowd:
		for _, p := range []struct {
			name string
			v    float64
		}{{"FlashStart", s.FlashStart}, {"FlashDuration", s.FlashDuration}, {"FlashFraction", s.FlashFraction}} {
			if p.v < 0 || p.v > 1 {
				return fmt.Errorf("synth: scenario %s = %v outside [0,1]", p.name, p.v)
			}
		}
	case ScenarioDiurnal:
		if s.DiurnalAmplitude < 0 || s.DiurnalAmplitude > 1 {
			return fmt.Errorf("synth: scenario DiurnalAmplitude = %v outside [0,1]", s.DiurnalAmplitude)
		}
	case ScenarioCrawler:
		if s.Crawlers <= 0 || s.CrawlsPerDay <= 0 || s.PagesPerCrawl <= 0 || s.CrawlerGap <= 0 {
			return fmt.Errorf("synth: crawler scenario needs positive Crawlers/CrawlsPerDay/PagesPerCrawl/CrawlerGap")
		}
	case ScenarioLongTailScan:
		if s.Scanners <= 0 || s.ScanGap <= 0 {
			return fmt.Errorf("synth: long-tail-scan scenario needs positive Scanners/ScanGap")
		}
	case ScenarioMultiTenant:
		if s.Tenants <= 1 {
			return fmt.Errorf("synth: multi-tenant scenario needs Tenants > 1, got %d", s.Tenants)
		}
	default:
		return fmt.Errorf("synth: unknown scenario kind %d", int(s.Kind))
	}
	return nil
}

// scenarioRuntime carries the per-generation scenario state. All of its
// randomness comes from the "scenario" child stream.
type scenarioRuntime struct {
	sc      Scenario
	site    *webgraph.Site
	start   time.Time
	horizon time.Time
	g       *stats.RNG

	flashDoc           webgraph.DocID
	flashFrom, flashTo time.Time
	nightPerm          []int // diurnal: permuted entry order for night sessions
	nightZipf          *stats.Zipf
	tenantPerm         []int // multi-tenant: shuffled entry order partitioned per tenant
	tenantOf           map[trace.ClientID]int
	tenantNext         int
}

func newScenarioRuntime(cfg Config, site *webgraph.Site, g *stats.RNG) *scenarioRuntime {
	day := 24 * time.Hour
	sr := &scenarioRuntime{
		sc:      cfg.Scenario,
		site:    site,
		start:   cfg.Start,
		horizon: cfg.Start.Add(time.Duration(cfg.Days) * day),
		g:       g,
	}
	switch sr.sc.Kind {
	case ScenarioFlashCrowd:
		span := sr.horizon.Sub(sr.start)
		sr.flashFrom = sr.start.Add(time.Duration(sr.sc.FlashStart * float64(span)))
		sr.flashTo = sr.flashFrom.Add(time.Duration(sr.sc.FlashDuration * float64(span)))
		// The flash document is a fixed mid-popularity entry: hot enough to
		// have successors, cold enough that the burst visibly reshapes the
		// top-K profile.
		sr.flashDoc = site.Entries[len(site.Entries)/3]
	case ScenarioDiurnal:
		sr.nightPerm = g.Split("night").Perm(len(site.Entries))
		sr.nightZipf = stats.NewZipf(len(site.Entries), 1.1)
	case ScenarioMultiTenant:
		sr.tenantPerm = g.Split("tenants").Perm(len(site.Entries))
		sr.tenantOf = make(map[trace.ClientID]int)
	}
	return sr
}

// nightFactor is 1 at the midnight trough and 0 at the midday peak.
func nightFactor(at time.Time) float64 {
	h := float64(at.Hour()) + float64(at.Minute())/60
	return (1 + math.Cos(2*math.Pi*h/24)) / 2
}

// keepSession thins the arrival process (diurnal trough). It must be called
// exactly once per arrival so the acceptance draw stays aligned.
func (sr *scenarioRuntime) keepSession(at time.Time) bool {
	if sr == nil || sr.sc.Kind != ScenarioDiurnal {
		return true
	}
	return sr.g.Bool(1 - sr.sc.DiurnalAmplitude*nightFactor(at))
}

// entryOverride picks a scenario-forced session entry, or webgraph.None to
// use the baseline chooser.
func (sr *scenarioRuntime) entryOverride(cl client, at time.Time) webgraph.DocID {
	if sr == nil {
		return webgraph.None
	}
	switch sr.sc.Kind {
	case ScenarioFlashCrowd:
		if !at.Before(sr.flashFrom) && at.Before(sr.flashTo) && sr.g.Bool(sr.sc.FlashFraction) {
			return sr.flashDoc
		}
	case ScenarioDiurnal:
		// At night a different audience surfs: entry preference follows the
		// night permutation, proportionally to how deep into the trough we
		// are.
		if sr.g.Bool(nightFactor(at)) {
			rank := sr.nightZipf.Rank(sr.g) - 1
			return sr.site.Entries[sr.nightPerm[rank]]
		}
	case ScenarioMultiTenant:
		t, ok := sr.tenantOf[cl.id]
		if !ok {
			t = sr.tenantNext % sr.sc.Tenants
			sr.tenantNext++
			sr.tenantOf[cl.id] = t
		}
		// The tenant's entry partition rotates one slot per day, so the
		// popular rows of yesterday's snapshot belong to someone else today.
		d := int(at.Sub(sr.start) / (24 * time.Hour))
		slot := (t + d) % sr.sc.Tenants
		per := len(sr.tenantPerm) / sr.sc.Tenants
		if per == 0 {
			return webgraph.None
		}
		return sr.site.Entries[sr.tenantPerm[slot*per+sr.g.Intn(per)]]
	}
	return webgraph.None
}

// emitRobots appends the non-human scenario traffic (crawlers, scanners).
// Robot clients use dedicated hostnames so tests can assert on quarantine
// decisions; they fetch pages only (no embedded objects), which is itself a
// behavioral tell.
func (sr *scenarioRuntime) emitRobots(tr *trace.Trace) {
	if sr == nil {
		return
	}
	switch sr.sc.Kind {
	case ScenarioCrawler:
		sr.emitCrawlers(tr)
	case ScenarioLongTailScan:
		sr.emitScanners(tr)
	}
}

func (sr *scenarioRuntime) emitCrawlers(tr *trace.Trace) {
	day := 24 * time.Hour
	days := int(sr.horizon.Sub(sr.start) / day)
	for c := 0; c < sr.sc.Crawlers; c++ {
		id := trace.ClientID(fmt.Sprintf("crawler%02d.bot", c))
		cg := sr.g.Split(fmt.Sprintf("crawler-%d", c))
		// Crawls are evenly spaced through each day, offset per crawler so
		// the robots do not stampede in lockstep.
		perDay := sr.sc.CrawlsPerDay
		gap := time.Duration(float64(day) / perDay)
		at := sr.start.Add(time.Duration(float64(c) / float64(sr.sc.Crawlers) * float64(gap)))
		for d := 0; d < days; d++ {
			crawlAt := sr.start.Add(time.Duration(d) * day).Add(at.Sub(sr.start) % day)
			for k := 0; float64(k) < perDay; k++ {
				entry := sr.site.Entries[(c+d*int(math.Ceil(perDay))+k)%len(sr.site.Entries)]
				sr.emitBFS(tr, id, entry, crawlAt, cg)
				crawlAt = crawlAt.Add(gap)
			}
		}
	}
}

// emitBFS walks breadth-first from entry, one page per constant gap, pages
// only. The frontier is visited in link order, so the walk is deterministic
// given the entry.
func (sr *scenarioRuntime) emitBFS(tr *trace.Trace, id trace.ClientID,
	entry webgraph.DocID, at time.Time, g *stats.RNG) {

	visited := map[webgraph.DocID]bool{entry: true}
	queue := []webgraph.DocID{entry}
	gap := secs(sr.sc.CrawlerGap)
	for n := 0; n < sr.sc.PagesPerCrawl && len(queue) > 0; n++ {
		cur := queue[0]
		queue = queue[1:]
		d := sr.site.Doc(cur)
		tr.Requests = append(tr.Requests, trace.Request{
			Time:   at,
			Client: id,
			Doc:    cur,
			Size:   d.Size,
			Remote: true,
			Status: 200,
			Path:   d.Path,
		})
		at = at.Add(gap)
		for _, l := range d.Links {
			if !visited[l] {
				visited[l] = true
				queue = append(queue, l)
			}
		}
		if len(queue) == 0 {
			// Dead end before the page budget: restart from a random entry
			// (robots follow their URL frontier across seeds).
			e := sr.site.Entries[g.Intn(len(sr.site.Entries))]
			if !visited[e] {
				visited[e] = true
				queue = append(queue, e)
			}
		}
	}
}

func (sr *scenarioRuntime) emitScanners(tr *trace.Trace) {
	// Each scanner sweeps the whole document space in ID order, the sweeps
	// spread evenly across the horizon and offset per scanner. ID-order
	// probing emits transition pairs that no link structure supports.
	span := sr.horizon.Sub(sr.start)
	gap := secs(sr.sc.ScanGap)
	for s := 0; s < sr.sc.Scanners; s++ {
		id := trace.ClientID(fmt.Sprintf("scan%02d.probe", s))
		sweepLen := time.Duration(len(sr.site.Docs)) * gap
		if sweepLen >= span {
			sweepLen = span / 2
		}
		at := sr.start.Add(time.Duration(float64(s) / float64(sr.sc.Scanners) * float64(span-sweepLen)))
		for i := range sr.site.Docs {
			if !at.Before(sr.horizon) {
				break
			}
			d := &sr.site.Docs[i]
			tr.Requests = append(tr.Requests, trace.Request{
				Time:   at,
				Client: id,
				Doc:    d.ID,
				Size:   d.Size,
				Remote: true,
				Status: 200,
				Path:   d.Path,
			})
			at = at.Add(gap)
		}
	}
}
