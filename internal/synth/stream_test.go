package synth

import (
	"hash/fnv"
	"reflect"
	"testing"

	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

func newStream(t *testing.T, cfg Config, seed int64) *Stream {
	t.Helper()
	s, err := NewStream(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestStreamDeterminism: the streamed trace is a pure function of
// (config, seed) — two independent generators materialize identical
// traces, and the result passes the trace invariants.
func TestStreamDeterminism(t *testing.T) {
	_, cfg := tinySetup(t, 3)
	a := trace.Materialize(newStream(t, cfg, 3).Merged())
	b := trace.Materialize(newStream(t, cfg, 3).Merged())
	if a.Len() == 0 {
		t.Fatal("empty streamed trace")
	}
	if !reflect.DeepEqual(a.Requests, b.Requests) {
		t.Fatal("same seed produced different streams")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("streamed trace invalid: %v", err)
	}
	c := trace.Materialize(newStream(t, cfg, 4).Merged())
	if reflect.DeepEqual(a.Requests, c.Requests) {
		t.Fatal("different seeds produced identical streams")
	}
}

// TestStreamCursorIndependence: regenerating one client's cursor in
// isolation replays exactly that client's slice of the full merge —
// no cursor ever draws from another's stream.
func TestStreamCursorIndependence(t *testing.T) {
	_, cfg := tinySetup(t, 5)
	s := newStream(t, cfg, 5)
	full := trace.Materialize(s.Merged())
	byClient := full.ByClient()

	checked := 0
	for i := 0; i < s.NumClients() && checked < 12; i++ {
		id := s.ClientID(i)
		want := byClient[id]
		if len(want) == 0 {
			continue
		}
		checked++
		solo := newStream(t, cfg, 5).Cursor(i)
		var got []trace.Request
		for {
			req, ok := solo.Next()
			if !ok {
				break
			}
			got = append(got, req)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("client %s: isolated cursor diverged from its slice of the merge", id)
		}
	}
	if checked == 0 {
		t.Fatal("no active clients to check")
	}
}

// TestStreamShardIndependence is the tentpole regeneration property:
// split the population into shards by a stable hash, regenerate each
// shard independently, and every shard's merge equals the full merge
// restricted to its clients — for any shard count.
func TestStreamShardIndependence(t *testing.T) {
	_, cfg := tinySetup(t, 7)
	full := trace.Materialize(newStream(t, cfg, 7).Merged())

	shardOf := func(id trace.ClientID, n int) int {
		h := fnv.New32a()
		h.Write([]byte(id))
		return int(h.Sum32() % uint32(n))
	}
	for _, shards := range []int{2, 5} {
		for si := 0; si < shards; si++ {
			s := newStream(t, cfg, 7)
			cursors := s.CursorsWhere(func(id trace.ClientID) bool {
				return shardOf(id, shards) == si
			})
			got := trace.Materialize(trace.MergeCursors(cursors))
			var want []trace.Request
			for _, r := range full.Requests {
				if shardOf(r.Client, shards) == si {
					want = append(want, r)
				}
			}
			if len(got.Requests) != len(want) {
				t.Fatalf("shards=%d idx=%d: %d requests, want %d",
					shards, si, len(got.Requests), len(want))
			}
			if !reflect.DeepEqual(got.Requests, want) {
				t.Fatalf("shards=%d idx=%d: shard regeneration diverged from restriction",
					shards, si)
			}
		}
	}
}

// TestStreamScenarioRejected: scenarios are cross-client overlays the
// per-client generator cannot express; NewStream must refuse rather than
// silently drop them.
func TestStreamScenarioRejected(t *testing.T) {
	_, cfg := tinySetup(t, 9)
	cfg.Scenario = DefaultScenario(ScenarioFlashCrowd)
	if _, err := NewStream(cfg, 9); err == nil {
		t.Fatal("scenario config accepted by the streaming generator")
	}
}

// TestStreamPoissonScale: per-client thinning must superpose back to the
// configured global arrival rate — the streamed trace's volume lands in
// the same regime as the materialized generator's (they are different
// draws of the same process, not the same bytes).
func TestStreamPoissonScale(t *testing.T) {
	_, cfg := tinySetup(t, 11)
	streamed := trace.Materialize(newStream(t, cfg, 11).Merged())
	legacy := gen(t, cfg, 11).Trace
	ratio := float64(streamed.Len()) / float64(legacy.Len())
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("streamed volume %d vs legacy %d (ratio %.2f) — arrival thinning is off",
			streamed.Len(), legacy.Len(), ratio)
	}
	// Remote/local mix should also match the configured fraction loosely.
	rf := streamed.RemoteFraction()
	if rf < 0.4 || rf > 0.95 {
		t.Fatalf("remote fraction %.2f out of regime", rf)
	}
}

// TestStreamNoise: with Noise on, junk rows (404s, scripts, aliases)
// appear and are attributed to real clients near their real requests.
func TestStreamNoise(t *testing.T) {
	_, cfg := tinySetup(t, 13)
	cfg.Noise = 0.2
	tr := trace.Materialize(newStream(t, cfg, 13).Merged())
	junk := 0
	for i := range tr.Requests {
		if tr.Requests[i].Doc == webgraph.None {
			junk++
		}
	}
	if junk == 0 {
		t.Fatal("Noise > 0 produced no junk rows")
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("noisy streamed trace invalid: %v", err)
	}
}
