package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table writes a padded text table: a header row, a separator, and the
// body rows. The cmd/ tools use it for every experiment's output.
func Table(w io.Writer, headers []string, rows [][]string) error {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) && len(c) < widths[i] {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := writeRow(headers); err != nil {
		return err
	}
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(sep); err != nil {
		return err
	}
	for _, r := range rows {
		if err := writeRow(r); err != nil {
			return err
		}
	}
	return nil
}

// Series renders an ASCII curve of (x, y) points, y scaled into width
// columns — a terminal stand-in for the paper's figures.
func Series(w io.Writer, title string, xs, ys []float64, xLabel, yLabel string, width int) error {
	if len(xs) != len(ys) || len(xs) == 0 {
		return fmt.Errorf("experiments: series needs matching non-empty points")
	}
	if width < 10 {
		width = 40
	}
	var yMax float64
	for _, y := range ys {
		if y > yMax {
			yMax = y
		}
	}
	if _, err := fmt.Fprintf(w, "%s  (y: %s, x: %s)\n", title, yLabel, xLabel); err != nil {
		return err
	}
	for i := range xs {
		bar := 0
		if yMax > 0 {
			bar = int(ys[i] / yMax * float64(width))
		}
		if _, err := fmt.Fprintf(w, "%10.3f %8.2f |%s\n", xs[i], ys[i], strings.Repeat("#", bar)); err != nil {
			return err
		}
	}
	return nil
}

// FmtBytes renders a byte count in the unit a human wants.
func FmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
