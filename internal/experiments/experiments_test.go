package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"specweb/internal/costmodel"
	"specweb/internal/popularity"
	"specweb/internal/simulate"
)

var (
	wlOnce sync.Once
	wl     *Workload
	wlErr  error
)

func smallWorkload(t *testing.T) *Workload {
	t.Helper()
	wlOnce.Do(func() {
		wl, wlErr = Build(SmallWorkload())
	})
	if wlErr != nil {
		t.Fatal(wlErr)
	}
	return wl
}

func TestBuildDeterminism(t *testing.T) {
	a, err := Build(SmallWorkload())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(SmallWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if a.Trace.Len() != b.Trace.Len() || a.Site.TotalBytes() != b.Site.TotalBytes() {
		t.Error("identical configs produced different workloads")
	}
	c := SmallWorkload()
	c.Seed = 7
	cw, err := Build(c)
	if err != nil {
		t.Fatal(err)
	}
	if cw.Trace.Len() == a.Trace.Len() && cw.Site.TotalBytes() == a.Site.TotalBytes() {
		t.Error("different seeds produced identical workloads")
	}
}

func TestFigure1(t *testing.T) {
	w := smallWorkload(t)
	res, err := Figure1(w, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 3 {
		t.Fatalf("only %d blocks", len(res.Rows))
	}
	// Blocks are ranked: cumulative coverage is monotone and ends at 1.
	prev := 0.0
	for _, r := range res.Rows {
		if r.CumReqFrac < prev-1e-12 {
			t.Error("cumulative coverage decreased")
		}
		prev = r.CumReqFrac
	}
	last := res.Rows[len(res.Rows)-1]
	if last.CumReqFrac < 0.999 {
		t.Errorf("final coverage %v, want 1", last.CumReqFrac)
	}
	// Heavy tail: the first block covers far more than its byte share.
	if res.Rows[0].CumReqFrac < 0.1 {
		t.Errorf("first block covers only %.1f%%", res.Rows[0].CumReqFrac*100)
	}
	if res.Top10PctCoverage <= res.Rows[0].ReqFrac/2 {
		t.Errorf("top-10%% coverage %v implausible", res.Top10PctCoverage)
	}
	if res.Lambda <= 0 {
		t.Error("lambda fit missing")
	}
	if res.AccessedBytes <= 0 || res.AccessedBytes > res.SiteBytes {
		t.Errorf("accessed %d vs site %d", res.AccessedBytes, res.SiteBytes)
	}
}

func TestClassification(t *testing.T) {
	w := smallWorkload(t)
	res, err := Classification(w)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range res.Counts {
		total += n
	}
	if total != res.DocsAccessed {
		t.Errorf("class counts sum %d != docs %d", total, res.DocsAccessed)
	}
	if res.Counts[popularity.LocallyPopular] == 0 ||
		res.Counts[popularity.GloballyPopular] == 0 {
		t.Errorf("degenerate classification: %v", res.Counts)
	}
	// §2's ordering: locally popular documents update most often.
	lr := res.MeanUpdateRate[popularity.LocallyPopular]
	if lr <= res.MeanUpdateRate[popularity.RemotelyPopular] &&
		lr <= res.MeanUpdateRate[popularity.GloballyPopular] {
		t.Errorf("update rates: %v, want local highest", res.MeanUpdateRate)
	}
}

func TestFigure2Shape(t *testing.T) {
	// A small cluster keeps the "lax" budget genuinely lax relative to
	// n/λ, which is the regime where eq. 7 favors uniform-access servers.
	pts, err := Figure2(3, 6.247e-7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 10 {
		t.Fatalf("only %d points", len(pts))
	}
	// Lax budget: allocation decreases with λ_j (more uniform servers get
	// more), at least across the sampled range endpoints.
	first, last := pts[0], pts[len(pts)-1]
	if first.LambdaRatio >= last.LambdaRatio {
		t.Fatal("ratios not increasing")
	}
	if first.Lax <= last.Lax {
		t.Errorf("lax allocation should favor small λ: %v at %.2f vs %v at %.2f",
			first.Lax, first.LambdaRatio, last.Lax, last.LambdaRatio)
	}
	// Tight budget: interior maximum — the peak allocation is neither at
	// the smallest nor the largest λ ratio.
	maxI := 0
	for i, p := range pts {
		if p.Tight > pts[maxI].Tight {
			maxI = i
		}
	}
	if maxI == 0 || maxI == len(pts)-1 {
		t.Errorf("tight budget should peak at intermediate λ, peaked at index %d/%d", maxI, len(pts)-1)
	}
	// Budgets are respected: allocations non-negative.
	for _, p := range pts {
		if p.Tight < 0 || p.Lax < 0 {
			t.Errorf("negative allocation: %+v", p)
		}
	}
}

func TestSizingPaperNumbers(t *testing.T) {
	rows, err := Sizing(0)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Servers != 10 || rows[0].HitFraction != 0.90 {
		t.Fatalf("unexpected first row %+v", rows[0])
	}
	if rows[0].B0 < 35e6 || rows[0].B0 > 38e6 {
		t.Errorf("10 servers @ 90%% needs %.1f MB, paper says ≈36 MB", rows[0].B0/1e6)
	}
	if rows[1].B0 < 480e6 || rows[1].B0 > 530e6 {
		t.Errorf("100 servers @ 96%% needs %.1f MB, paper says ≈500 MB", rows[1].B0/1e6)
	}
}

func TestFigure3Shape(t *testing.T) {
	w := smallWorkload(t)
	curves, err := Figure3(w, []float64{0.10, 0.04}, []int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 2 {
		t.Fatalf("got %d curves", len(curves))
	}
	for _, c := range curves {
		prev := -1.0
		for _, p := range c.Points {
			if p.ReductionPct < prev-1e-9 {
				t.Errorf("fraction %v: reduction decreased with more proxies", c.Fraction)
			}
			prev = p.ReductionPct
		}
	}
	// The 10% curve dominates the 4% curve at every proxy count.
	for i := range curves[0].Points {
		if curves[0].Points[i].ReductionPct < curves[1].Points[i].ReductionPct-1e-9 {
			t.Errorf("at %d proxies, 10%% (%.1f) < 4%% (%.1f)",
				curves[0].Points[i].Proxies,
				curves[0].Points[i].ReductionPct, curves[1].Points[i].ReductionPct)
		}
	}
}

func TestFigure4(t *testing.T) {
	w := smallWorkload(t)
	res, err := Figure4(w, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs < 50 {
		t.Fatalf("only %d pairs", res.Pairs)
	}
	if res.EmbeddingMass <= 0 {
		t.Error("no mass in the p≈1 bin (embedding peak missing)")
	}
	if res.Histogram.Total() != int64(res.Pairs) {
		t.Error("histogram total disagrees with pair count")
	}
}

func TestFigure5And6AndHeadline(t *testing.T) {
	w := smallWorkload(t)
	pts, err := Figure5(w, []float64{0.95, 0.5, 0.25, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d points", len(pts))
	}
	// Traffic monotone in speculation aggressiveness.
	for i := 1; i < len(pts); i++ {
		if pts[i].Ratios.Bandwidth < pts[i-1].Ratios.Bandwidth-1e-9 {
			t.Error("bandwidth not monotone across thresholds")
		}
	}
	// Figure 6 reordering sorts by traffic.
	f6 := Figure6(pts)
	for i := 1; i < len(f6); i++ {
		if f6[i].Ratios.TrafficIncreasePct() < f6[i-1].Ratios.TrafficIncreasePct() {
			t.Error("figure 6 not sorted by traffic")
		}
	}
	rows, err := Headline(pts, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("headline rows = %d", len(rows))
	}
	// More budget buys at least as much load reduction.
	if rows[1].LoadReduction < rows[0].LoadReduction-1e-9 {
		t.Errorf("10%% budget (%.1f%%) worse than 5%% (%.1f%%)",
			rows[1].LoadReduction, rows[0].LoadReduction)
	}
	if _, err := Headline(pts[:1], nil); err == nil {
		t.Error("single-point headline accepted")
	}
}

func TestStability(t *testing.T) {
	w := smallWorkload(t)
	rows, err := Stability(w, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	byDP := map[[2]int]StabilityRow{}
	for _, r := range rows {
		byDP[[2]int{r.UpdateCycleDays, r.HistoryDays}] = r
	}
	fresh := byDP[[2]int{1, 60}]
	stale := byDP[[2]int{60, 60}]
	// §3.4: longer update cycles degrade (or at best match) performance.
	if stale.Ratios.ServerLoadReductionPct() > fresh.Ratios.ServerLoadReductionPct()+1e-9 {
		t.Errorf("D=60 (%.2f%%) beat D=1 (%.2f%%)",
			stale.Ratios.ServerLoadReductionPct(), fresh.Ratios.ServerLoadReductionPct())
	}
}

func TestMaxSizeSweepAndBest(t *testing.T) {
	w := smallWorkload(t)
	rows, err := MaxSizeSweep(w, []float64{0.25, 0.1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 10 {
		t.Fatalf("got %d rows", len(rows))
	}
	// At equal Tp, tighter caps cannot use more traffic than no cap.
	uncapped := map[float64]float64{}
	for _, r := range rows {
		if r.MaxSize == 0 {
			uncapped[r.Tp] = r.Ratios.Bandwidth
		}
	}
	for _, r := range rows {
		if r.MaxSize == 0 {
			continue
		}
		if base, ok := uncapped[r.Tp]; ok && r.Ratios.Bandwidth > base+0.02 {
			t.Errorf("MaxSize %d at Tp %.2f used more traffic than no cap", r.MaxSize, r.Tp)
		}
	}
	best, err := BestMaxSize(rows, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if best.Ratios.ServerLoadReductionPct() <= 0 {
		t.Error("best row has no gains")
	}
	if _, err := BestMaxSize(rows, -10); err == nil {
		t.Error("impossible budget accepted")
	}
}

func TestCachingTable(t *testing.T) {
	w := smallWorkload(t)
	rows, err := CachingTable(w, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Name == "no cache" {
			// With nowhere to hold pushed documents, speculation cannot
			// change the miss stream; it only wastes bandwidth.
			if r.Ratios.ServerLoad < 0.999 || r.Ratios.Bandwidth < 1 {
				t.Errorf("no-cache row should be gain-free: %+v", r.Ratios)
			}
			continue
		}
		if r.Ratios.ServerLoad >= 1 {
			t.Errorf("%s: no load gain (%v) — §3.4 says gains survive without long-term caches",
				r.Name, r.Ratios.ServerLoad)
		}
	}
}

func TestCooperativeTable(t *testing.T) {
	w := smallWorkload(t)
	rows, err := Cooperative(w, []float64{0.25})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Cooperative.Bandwidth > r.Plain.Bandwidth+1e-9 {
		t.Errorf("cooperative used more bandwidth: %v vs %v",
			r.Cooperative.Bandwidth, r.Plain.Bandwidth)
	}
}

func TestPrefetchTable(t *testing.T) {
	w := smallWorkload(t)
	rows, err := PrefetchTable(w, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	byMode := map[simulate.Mode]PrefetchRow{}
	for _, r := range rows {
		byMode[r.Mode] = r
	}
	if byMode[simulate.ModePush].SpeculatedDocs == 0 {
		t.Error("push mode pushed nothing")
	}
	if byMode[simulate.ModeHints].PrefetchedDocs == 0 {
		t.Error("hints mode prefetched nothing")
	}
	if byMode[simulate.ModeHybrid].SpeculatedDocs == 0 || byMode[simulate.ModeHybrid].PrefetchedDocs == 0 {
		t.Error("hybrid should both push and hint")
	}
}

func TestClosureAblation(t *testing.T) {
	w := smallWorkload(t)
	rows, err := ClosureAblation(w, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Ratios.ServerLoad >= 1 {
			t.Errorf("%s produced no gains", r.Name)
		}
	}
}

func TestCompareAllocation(t *testing.T) {
	w := smallWorkload(t)
	cmp, err := CompareAllocation(w, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.AlphaGreedy <= 0 || cmp.AlphaGreedy > 1 {
		t.Errorf("greedy alpha %v", cmp.AlphaGreedy)
	}
	// Greedy is the optimum; the model can only do as well or worse.
	if cmp.ModelShortfall < -0.02 {
		t.Errorf("model beat greedy by %v — greedy should be optimal", -cmp.ModelShortfall)
	}
	if _, err := CompareAllocation(w, 1, 0); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestTableRender(t *testing.T) {
	var buf bytes.Buffer
	err := Table(&buf, []string{"a", "long-header"}, [][]string{
		{"1", "2"},
		{"wide-cell", "3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "---") {
		t.Error("no separator row")
	}
	if !strings.HasPrefix(lines[2], "1 ") {
		t.Errorf("row misaligned: %q", lines[2])
	}
}

func TestSeriesRender(t *testing.T) {
	var buf bytes.Buffer
	if err := Series(&buf, "t", []float64{1, 2}, []float64{5, 10}, "x", "y", 20); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "####################") {
		t.Errorf("max bar missing:\n%s", buf.String())
	}
	if err := Series(&buf, "t", []float64{1}, nil, "x", "y", 20); err == nil {
		t.Error("mismatched series accepted")
	}
}

func TestFmtBytes(t *testing.T) {
	cases := map[int64]string{
		512:     "512B",
		2 << 10: "2.0KB",
		3 << 20: "3.0MB",
		5 << 30: "5.0GB",
	}
	for in, want := range cases {
		if got := FmtBytes(in); got != want {
			t.Errorf("FmtBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestWorkloadConfigs(t *testing.T) {
	d := DefaultWorkload()
	if d.Days != 90 || d.SessionsPerDay != 220 {
		t.Errorf("default workload %+v, want the paper's ≈90-day scale", d)
	}
	m := MediaWorkload()
	if m.Profile.Name != "media" {
		t.Errorf("media workload profile %q", m.Profile.Name)
	}
	if len(DefaultTps()) < 8 {
		t.Error("default sweep too sparse")
	}
}

func TestMediaWorkloadBuilds(t *testing.T) {
	cfg := MediaWorkload()
	cfg.Days = 4
	cfg.SessionsPerDay = 25
	w, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w.Trace.Len() < 100 {
		t.Errorf("media trace only %d requests", w.Trace.Len())
	}
	// Media objects dominate bytes: mean transfer far above a department
	// page.
	if w.Trace.TotalBytes()/int64(w.Trace.Len()) < 20<<10 {
		t.Errorf("mean transfer %d bytes; media profile should be heavy",
			w.Trace.TotalBytes()/int64(w.Trace.Len()))
	}
}

func TestFigure3Specialized(t *testing.T) {
	w := smallWorkload(t)
	pts, err := Figure3Specialized(w, 0.10, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].Proxies != 4 {
		t.Fatalf("points = %+v", pts)
	}
	uni, err := Figure3(w, []float64{0.10}, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].ReductionPct < uni[0].Points[0].ReductionPct-2 {
		t.Errorf("specialized (%.1f%%) clearly below uniform (%.1f%%)",
			pts[0].ReductionPct, uni[0].Points[0].ReductionPct)
	}
}

func TestBuildErrors(t *testing.T) {
	bad := SmallWorkload()
	bad.Profile.Pages = 0
	if _, err := Build(bad); err == nil {
		t.Error("bad profile accepted")
	}
	bad = SmallWorkload()
	bad.Net.Backbones = 0
	if _, err := Build(bad); err == nil {
		t.Error("bad topology accepted")
	}
	bad = SmallWorkload()
	bad.Days = 0
	if _, err := Build(bad); err == nil {
		t.Error("bad trace config accepted")
	}
}

func TestHeadlineInterpolationEdges(t *testing.T) {
	pts := []SweepPoint{
		{Tp: 0.9, Ratios: ratiosWithTraffic(2)},
		{Tp: 0.1, Ratios: ratiosWithTraffic(40)},
	}
	rows, err := Headline(pts, []float64{1, 20, 100})
	if err != nil {
		t.Fatal(err)
	}
	// Below range: clamps to the most conservative point.
	if rows[0].Tp != 0.9 {
		t.Errorf("below-range budget got Tp %v", rows[0].Tp)
	}
	// Inside range: interpolated between the two.
	if rows[1].Tp >= 0.9 || rows[1].Tp <= 0.1 {
		t.Errorf("interior budget got Tp %v", rows[1].Tp)
	}
	// Above range: clamps to the most aggressive point.
	if rows[2].Tp != 0.1 {
		t.Errorf("above-range budget got Tp %v", rows[2].Tp)
	}
}

func ratiosWithTraffic(pct float64) costmodel.Ratios {
	return costmodel.Ratios{
		Bandwidth:   1 + pct/100,
		ServerLoad:  1 - pct/200,
		ServiceTime: 1 - pct/300,
		MissRate:    1 - pct/400,
	}
}
