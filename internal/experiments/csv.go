package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes a header row and numeric rows, the plottable form of a
// figure's data series.
func WriteCSV(w io.Writer, headers []string, rows [][]float64) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(headers); err != nil {
		return fmt.Errorf("experiments: writing CSV header: %w", err)
	}
	for _, r := range rows {
		if len(r) != len(headers) {
			return fmt.Errorf("experiments: CSV row has %d cells, header has %d", len(r), len(headers))
		}
		cells := make([]string, len(r))
		for i, v := range r {
			cells[i] = strconv.FormatFloat(v, 'g', 10, 64)
		}
		if err := cw.Write(cells); err != nil {
			return fmt.Errorf("experiments: writing CSV row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// Figure1CSV renders the block-popularity profile as CSV.
func Figure1CSV(w io.Writer, res *Figure1Result) error {
	rows := make([][]float64, 0, len(res.Rows))
	for _, r := range res.Rows {
		rows = append(rows, []float64{
			float64(r.Block), float64(r.Docs), float64(r.CumBytes),
			r.ReqFrac, r.CumReqFrac,
		})
	}
	return WriteCSV(w, []string{"block", "docs", "cum_bytes", "req_frac", "cum_req_frac"}, rows)
}

// Figure2CSV renders the allocation curves as CSV.
func Figure2CSV(w io.Writer, pts []Figure2Point) error {
	rows := make([][]float64, 0, len(pts))
	for _, p := range pts {
		rows = append(rows, []float64{p.LambdaRatio, p.Tight, p.Lax})
	}
	return WriteCSV(w, []string{"lambda_ratio", "tight", "lax"}, rows)
}

// Figure3CSV renders one dissemination curve as CSV.
func Figure3CSV(w io.Writer, c Figure3Curve) error {
	rows := make([][]float64, 0, len(c.Points))
	for _, p := range c.Points {
		rows = append(rows, []float64{
			float64(p.Proxies), float64(p.TotalStorage), p.ReductionPct,
			float64(p.RootBytes), float64(p.MaxProxyBytes),
		})
	}
	return WriteCSV(w, []string{"proxies", "total_storage", "reduction_pct", "root_bytes", "max_proxy_bytes"}, rows)
}

// Figure4CSV renders the dependency histogram as CSV.
func Figure4CSV(w io.Writer, res *Figure4Result) error {
	h := res.Histogram
	rows := make([][]float64, 0, len(h.Counts))
	for i, c := range h.Counts {
		rows = append(rows, []float64{h.BinLo(i), float64(c), h.Fraction(i)})
	}
	return WriteCSV(w, []string{"p_bin_lo", "pairs", "fraction"}, rows)
}

// Figure5CSV renders the threshold sweep as CSV (serves Figures 5 and 6:
// plot against tp or traffic_pct respectively).
func Figure5CSV(w io.Writer, pts []SweepPoint) error {
	rows := make([][]float64, 0, len(pts))
	for _, p := range pts {
		rows = append(rows, []float64{
			p.Tp,
			p.Ratios.TrafficIncreasePct(),
			p.Ratios.ServerLoadReductionPct(),
			p.Ratios.ServiceTimeReductionPct(),
			p.Ratios.MissRateReductionPct(),
			float64(p.SpeculatedDocs),
			float64(p.UsedDocs),
		})
	}
	return WriteCSV(w, []string{
		"tp", "traffic_pct", "load_red_pct", "time_red_pct", "miss_red_pct",
		"pushed", "used",
	}, rows)
}
