package experiments

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// update regenerates the golden files:
//
//	go test ./internal/experiments -run Golden -update
var update = flag.Bool("update", false, "rewrite testdata/golden files")

// checkGolden compares got against testdata/golden/<name>, rewriting the
// file under -update. Golden files pin the byte-exact renderer output on
// the small workload, so a change to a figure computation, a float
// format, or the trace synthesis shows up as a reviewable diff.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run: go test ./internal/experiments -run Golden -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden file; rerun with -update and review the diff.\ngot:\n%s\nwant:\n%s",
			name, got, want)
	}
}

func TestGoldenFigure1CSV(t *testing.T) {
	res, err := Figure1(smallWorkload(t), 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Figure1CSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figure1.csv", buf.Bytes())
}

func TestGoldenFigure2CSV(t *testing.T) {
	pts, err := Figure2(3, 6.247e-7, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Figure2CSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figure2.csv", buf.Bytes())
}

func TestGoldenFigure3CSV(t *testing.T) {
	curves, err := Figure3(smallWorkload(t), []float64{0.10, 0.04}, []int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range curves {
		var buf bytes.Buffer
		if err := Figure3CSV(&buf, c); err != nil {
			t.Fatal(err)
		}
		name := fmt.Sprintf("figure3_f%02.0f.csv", c.Fraction*100)
		checkGolden(t, name, buf.Bytes())
	}
}

func TestGoldenFigure4CSV(t *testing.T) {
	res, err := Figure4(smallWorkload(t), 20)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Figure4CSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figure4.csv", buf.Bytes())
}

func TestGoldenFigure5CSV(t *testing.T) {
	pts, err := Figure5(smallWorkload(t), []float64{0.95, 0.5, 0.25, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Figure5CSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figure5.csv", buf.Bytes())

	// Figure 6 is the same sweep reordered by traffic; pin it too.
	var buf6 bytes.Buffer
	if err := Figure5CSV(&buf6, Figure6(pts)); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figure6.csv", buf6.Bytes())
}

func TestGoldenTable(t *testing.T) {
	res, err := Figure1(smallWorkload(t), 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	headers := []string{"block", "docs", "bytes", "req_frac"}
	var rows [][]string
	for _, r := range res.Rows {
		rows = append(rows, []string{
			strconv.Itoa(r.Block), strconv.Itoa(r.Docs), FmtBytes(r.CumBytes),
			strconv.FormatFloat(r.ReqFrac, 'f', 4, 64),
		})
	}
	var buf bytes.Buffer
	if err := Table(&buf, headers, rows); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table_figure1.txt", buf.Bytes())
}

func TestGoldenSeries(t *testing.T) {
	pts, err := Figure5(smallWorkload(t), []float64{0.95, 0.5, 0.25, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	var xs, ys []float64
	for _, p := range pts {
		xs = append(xs, p.Tp)
		ys = append(ys, p.Ratios.ServerLoadReductionPct())
	}
	var buf bytes.Buffer
	if err := Series(&buf, "Figure 5: server load vs tp", xs, ys, "tp", "load %", 40); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "series_figure5.txt", buf.Bytes())
}
