package experiments

import (
	"fmt"
	"math"

	"specweb/internal/allocation"
	"specweb/internal/dissemination"
	"specweb/internal/popularity"
	"specweb/internal/stats"
	"specweb/internal/webgraph"
)

// Figure1Row is one 256 KB block of Figure 1: blocks of documents in
// decreasing remote popularity, with the fraction of remote requests each
// block (and the running prefix) covers. The CumReqFrac column doubles as
// the "bandwidth saved if the most popular blocks are serviced at an
// earlier stage" curve the figure overlays.
type Figure1Row struct {
	Block      int
	Docs       int
	Bytes      int64
	CumBytes   int64
	ReqFrac    float64
	CumReqFrac float64
}

// Figure1Result bundles the block profile with the summary statistics §2
// quotes around the figure.
type Figure1Result struct {
	Rows []Figure1Row
	// Lambda is the exponential-model fit of the hit curve (the paper
	// estimated 6.247e-7 for cs-www.bu.edu).
	Lambda float64
	// DocsAccessed and AccessedBytes mirror "656 files were remotely
	// accessed at least once. The size of these 656 files totalled some
	// 36.5 MBytes".
	DocsAccessed  int
	AccessedBytes int64
	SiteBytes     int64
	// Top10PctCoverage is the fraction of requests covered by the most
	// popular 10% of blocks ("Only 10% of all blocks accounted for 91% of
	// all requests!").
	Top10PctCoverage float64
}

// Figure1 computes the block popularity profile of Figure 1 over the
// workload's trace.
func Figure1(w *Workload, blockSize int64) (*Figure1Result, error) {
	if blockSize <= 0 {
		blockSize = 256 << 10
	}
	an := popularity.Analyze(w.Trace, w.Site)
	if an.TotalRequests == 0 {
		return nil, fmt.Errorf("experiments: trace has no resolvable requests")
	}
	blocks := an.Blocks(blockSize, popularity.ByRemoteRequests)
	res := &Figure1Result{
		DocsAccessed:  len(an.Docs),
		AccessedBytes: an.AccessedBytes,
		SiteBytes:     an.SiteBytes,
	}
	var prevCum float64
	for i, b := range blocks {
		res.Rows = append(res.Rows, Figure1Row{
			Block:      i + 1,
			Docs:       b.Docs,
			Bytes:      b.Bytes,
			CumBytes:   b.CumBytes,
			ReqFrac:    b.CumReqFrac - prevCum,
			CumReqFrac: b.CumReqFrac,
		})
		prevCum = b.CumReqFrac
	}
	cut := (len(blocks) + 9) / 10
	if cut > 0 {
		res.Top10PctCoverage = blocks[cut-1].CumReqFrac
	}
	lam, err := an.FitLambda(popularity.ByRemoteRequests)
	if err == nil {
		res.Lambda = lam
	}
	return res, nil
}

// ClassificationResult is the §2 document census: remote/local/global
// popularity counts and per-class mean update rates, plus the mutable core.
type ClassificationResult struct {
	DocsAccessed int
	Counts       map[popularity.Class]int
	// MeanUpdateRate is the observed per-day update probability per class
	// (the paper: ≈2%/day for locally popular, <0.5%/day otherwise).
	MeanUpdateRate map[popularity.Class]float64
	MutableDocs    int
}

// Classification computes the §2 text table from the workload. Popularity
// classes come from the access trace; update rates are observed over a
// monitoring window of at least 186 days — the paper monitored last-update
// dates from March 28 to October 7, 1995, a window independent of (and much
// longer than) the January–March access trace, because per-day update
// probabilities of a fraction of a percent need months to resolve.
func Classification(w *Workload) (*ClassificationResult, error) {
	an := popularity.Analyze(w.Trace, w.Site)
	if an.TotalRequests == 0 {
		return nil, fmt.Errorf("experiments: trace has no resolvable requests")
	}
	cls := an.Classify(popularity.DefaultClassify())

	days := w.Config.Days
	if days < 186 {
		days = 186
	}
	g := stats.NewRNG(w.Config.Seed).Split("update-monitor")
	updateDays := map[webgraph.DocID]int{}
	for d := 0; d < days; d++ {
		for i := range w.Site.Docs {
			if g.Bool(w.Site.Docs[i].UpdateProb) {
				updateDays[w.Site.Docs[i].ID]++
			}
		}
	}
	mut, err := popularity.ClassifyMutable(updateDays, days, 0.01)
	if err != nil {
		return nil, err
	}
	res := &ClassificationResult{
		DocsAccessed:   len(an.Docs),
		Counts:         cls.Counts,
		MeanUpdateRate: make(map[popularity.Class]float64),
		MutableDocs:    len(mut.Mutable),
	}
	// Update rates are computed over HTML pages only: embedded multimedia
	// objects essentially never change and would otherwise swamp the
	// per-class means (the paper's mutable documents — schedules, news —
	// were pages).
	sums := map[popularity.Class]float64{}
	ns := map[popularity.Class]int{}
	for id, c := range cls.ByDoc {
		if !w.Site.Valid(id) || !w.Site.Doc(id).IsPage() {
			continue
		}
		sums[c] += mut.RatePerDay[id]
		ns[c]++
	}
	for c, n := range ns {
		if n > 0 {
			res.MeanUpdateRate[c] = sums[c] / float64(n)
		}
	}
	return res, nil
}

// Figure2Point is one x position of Figure 2: the optimal storage B_j for a
// server with popularity constant λ_j in a cluster where the other n-1
// servers share λ_i, under a tight (B₀ = 1/λ_i) and a lax (B₀ = 10/λ_i)
// proxy budget. Allocations are reported in units of 1/λ_i.
type Figure2Point struct {
	LambdaRatio float64 // λ_j / λ_i
	Tight       float64 // B_j · λ_i at B₀ = 1/λ_i
	Lax         float64 // B_j · λ_i at B₀ = 10/λ_i
}

// Figure2 computes the storage-allocation curves of Figure 2 analytically.
func Figure2(n int, lambdaI float64, ratios []float64) ([]Figure2Point, error) {
	if n < 2 {
		return nil, fmt.Errorf("experiments: figure 2 needs a cluster of at least 2, got %d", n)
	}
	if lambdaI <= 0 {
		return nil, fmt.Errorf("experiments: invalid lambda %v", lambdaI)
	}
	if len(ratios) == 0 {
		for r := 0.1; r <= 10.0001; r *= 1.2 {
			ratios = append(ratios, r)
		}
	}
	var out []Figure2Point
	for _, ratio := range ratios {
		servers := make([]allocation.Server, n)
		for i := range servers {
			servers[i] = allocation.Server{R: 1, Lambda: lambdaI}
		}
		servers[0].Lambda = lambdaI * ratio
		pt := Figure2Point{LambdaRatio: ratio}
		for _, budget := range []struct {
			b0  float64
			dst *float64
		}{
			{1 / lambdaI, &pt.Tight},
			{10 / lambdaI, &pt.Lax},
		} {
			bs, err := allocation.ExponentialAllocate(budget.b0, servers)
			if err != nil {
				return nil, err
			}
			*budget.dst = bs[0] * lambdaI
		}
		out = append(out, pt)
	}
	return out, nil
}

// SizingRow is one line of the §2.3 sizing examples (equation 10).
type SizingRow struct {
	Servers     int
	HitFraction float64
	B0          float64 // bytes
}

// Sizing reproduces the paper's two eq. 10 examples plus a small sweep, for
// the given λ (the paper's measured 6.247e-7 by default when lambda <= 0).
func Sizing(lambda float64) ([]SizingRow, error) {
	if lambda <= 0 {
		lambda = 6.247e-7
	}
	var rows []SizingRow
	for _, c := range []struct {
		n   int
		hit float64
	}{
		{10, 0.90},  // "36 MBytes" example
		{100, 0.96}, // "500 MBytes" example
		{10, 0.50},
		{10, 0.99},
		{100, 0.90},
	} {
		b0, err := allocation.SizingB0(c.n, lambda, c.hit)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SizingRow{Servers: c.n, HitFraction: c.hit, B0: b0})
	}
	return rows, nil
}

// Figure3Curve is one dissemination curve of Figure 3: a fraction of the
// most popular data disseminated to 1..K proxies.
type Figure3Curve struct {
	Fraction float64
	Points   []dissemination.Point
}

// Figure3 runs the dissemination sweep for each fraction (the paper plots
// 10% and 4%).
func Figure3(w *Workload, fractions []float64, proxyCounts []int) ([]Figure3Curve, error) {
	if len(fractions) == 0 {
		fractions = []float64{0.10, 0.04}
	}
	if len(proxyCounts) == 0 {
		proxyCounts = []int{1, 2, 3, 4, 6, 8, 10, 12, 14, 16}
	}
	var out []Figure3Curve
	for _, f := range fractions {
		pts, err := dissemination.Simulate(w.Trace, dissemination.Config{
			Site:            w.Site,
			Topo:            w.Topo,
			Order:           popularity.ByRequests,
			Fraction:        f,
			ProxyCounts:     proxyCounts,
			IncludePushCost: true,
			Updates:         w.Updates,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, Figure3Curve{Fraction: f, Points: pts})
	}
	return out, nil
}

// LoadBalanceRow is one proxy-count point of the §2.3 bottleneck study:
// how much of the home server's byte load the proxy tier absorbs, how
// concentrated it is on the busiest proxy, and what dynamic shielding does
// to it.
type LoadBalanceRow struct {
	Proxies             int
	RootShedPct         float64 // % of home-server bytes absorbed by proxies
	MaxProxySharePct    float64 // busiest proxy's % of total bytes
	ShieldedRootPct     float64 // root shed % when proxies cap at capacity
	ShieldedMaxSharePct float64
}

// LoadBalance sweeps proxy counts and reports the home server's load relief
// (§2's "balancing the load amongst servers") with and without dynamic
// shielding at the given per-proxy byte capacity.
func LoadBalance(w *Workload, fraction float64, proxyCounts []int, capacity int64) ([]LoadBalanceRow, error) {
	if len(proxyCounts) == 0 {
		proxyCounts = []int{1, 2, 4, 8, 16}
	}
	base := dissemination.Config{
		Site:        w.Site,
		Topo:        w.Topo,
		Order:       popularity.ByRequests,
		Fraction:    fraction,
		ProxyCounts: proxyCounts,
	}
	open, err := dissemination.Simulate(w.Trace, base)
	if err != nil {
		return nil, err
	}
	shieldCfg := base
	shieldCfg.ProxyCapacity = capacity
	shielded, err := dissemination.Simulate(w.Trace, shieldCfg)
	if err != nil {
		return nil, err
	}
	var rows []LoadBalanceRow
	for i := range open {
		total := float64(open[i].RootBytesBaseline)
		if total == 0 {
			return nil, fmt.Errorf("experiments: empty demand")
		}
		rows = append(rows, LoadBalanceRow{
			Proxies:             open[i].Proxies,
			RootShedPct:         100 * float64(open[i].RootBytesBaseline-open[i].RootBytes) / total,
			MaxProxySharePct:    100 * float64(open[i].MaxProxyBytes) / total,
			ShieldedRootPct:     100 * float64(shielded[i].RootBytesBaseline-shielded[i].RootBytes) / total,
			ShieldedMaxSharePct: 100 * float64(shielded[i].MaxProxyBytes) / total,
		})
	}
	return rows, nil
}

// Figure3Specialized runs the dissemination sweep with per-proxy replica
// specialization (each proxy holds the documents its own subtree's clients
// favor), the improvement §2.4 notes over uniform replication.
func Figure3Specialized(w *Workload, fraction float64, proxyCounts []int) ([]dissemination.Point, error) {
	return dissemination.Simulate(w.Trace, dissemination.Config{
		Site:            w.Site,
		Topo:            w.Topo,
		Order:           popularity.ByRequests,
		Fraction:        fraction,
		ProxyCounts:     proxyCounts,
		IncludePushCost: true,
		Updates:         w.Updates,
		Specialized:     true,
	})
}

// AllocationComparison quantifies the DESIGN.md ablation "greedy empirical
// allocation vs the exponential closed form": it splits the workload's
// servers... the workload has a single site, so the cluster is synthesized
// by partitioning the site's documents into n pseudo-servers and comparing
// the α achieved by the exponential closed form (fit per pseudo-server)
// against the empirical greedy optimum at equal capacity.
type AllocationComparison struct {
	Servers        int
	CapacityBytes  int64
	AlphaGreedy    float64
	AlphaModel     float64 // greedy α evaluated at the closed form's split
	ModelShortfall float64 // AlphaGreedy - AlphaModel
}

// CompareAllocation runs the ablation for a cluster of n pseudo-servers and
// a proxy of the given capacity.
func CompareAllocation(w *Workload, n int, capacity int64) (*AllocationComparison, error) {
	if n < 2 {
		return nil, fmt.Errorf("experiments: need n >= 2 pseudo-servers, got %d", n)
	}
	an := popularity.Analyze(w.Trace, w.Site)
	if len(an.Docs) < n {
		return nil, fmt.Errorf("experiments: only %d accessed docs for %d servers", len(an.Docs), n)
	}
	// Partition accessed documents round-robin by rank so every
	// pseudo-server gets a similar popularity profile scaled by R.
	curves := make([]allocation.Curve, n)
	ranked := an.Ranked(popularity.ByRequests)
	for idx, d := range ranked {
		s := idx % n
		curves[s].Items = append(curves[s].Items, allocation.Item{Size: d.Size, Requests: d.Requests})
		curves[s].R += float64(d.Requests) * float64(d.Size)
	}

	// Fit an exponential model per pseudo-server.
	servers := make([]allocation.Server, n)
	for i := range curves {
		var bs, hs []float64
		var cumB, cumR int64
		var totR int64
		for _, it := range curves[i].Items {
			totR += it.Requests
		}
		for _, it := range curves[i].Items {
			cumB += it.Size
			cumR += it.Requests
			bs = append(bs, float64(cumB))
			if totR > 0 {
				hs = append(hs, float64(cumR)/float64(totR))
			} else {
				hs = append(hs, 0)
			}
		}
		lam, err := fitOrFallback(bs, hs)
		if err != nil {
			return nil, err
		}
		servers[i] = allocation.Server{R: curves[i].R, Lambda: lam}
	}

	if capacity <= 0 {
		capacity = an.AccessedBytes / 5
	}
	_, alphaGreedy, err := allocation.GreedyAllocate(capacity, curves)
	if err != nil {
		return nil, err
	}
	modelB, err := allocation.ExponentialAllocate(float64(capacity), servers)
	if err != nil {
		return nil, err
	}
	// Evaluate the model's split on the empirical curves: greedily fill
	// each server's own budget.
	var alphaModel float64
	var totalR float64
	for i := range curves {
		totalR += curves[i].R
	}
	for i := range curves {
		allocs, a, err := allocation.GreedyAllocate(int64(modelB[i]), []allocation.Curve{curves[i]})
		if err != nil {
			return nil, err
		}
		_ = allocs
		if totalR > 0 {
			alphaModel += a * curves[i].R / totalR
		}
	}
	return &AllocationComparison{
		Servers:        n,
		CapacityBytes:  capacity,
		AlphaGreedy:    alphaGreedy,
		AlphaModel:     alphaModel,
		ModelShortfall: alphaGreedy - alphaModel,
	}, nil
}

func fitOrFallback(bs, hs []float64) (float64, error) {
	lam, err := stats.FitExponentialHitCurve(bs, hs)
	if err == nil && lam > 0 && !math.IsInf(lam, 0) {
		return lam, nil
	}
	// Fallback: half coverage at half the bytes ⇒ λ = ln(2)/(B/2).
	if len(bs) == 0 || bs[len(bs)-1] <= 0 {
		return 0, fmt.Errorf("experiments: cannot fit lambda")
	}
	return 2 * math.Ln2 / bs[len(bs)-1], nil
}
