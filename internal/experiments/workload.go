// Package experiments regenerates every table and figure of the paper's
// evaluation on the synthetic workload, one function per artifact (see
// DESIGN.md's experiment index). The cmd/ tools, the examples, and the
// repository's benchmark suite are all thin wrappers over this package.
package experiments

import (
	"fmt"

	"specweb/internal/netsim"
	"specweb/internal/stats"
	"specweb/internal/synth"
	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

// WorkloadConfig describes the world an experiment runs against.
type WorkloadConfig struct {
	Profile        webgraph.Profile
	Net            netsim.Config
	Days           int
	SessionsPerDay float64
	Seed           int64
	// Noise is the junk-request fraction passed to the trace generator
	// (see synth.Config.Noise). Experiments run on clean traces; the
	// tracegen tool exposes this to produce realistic raw logs.
	Noise float64
	// Scenario names an adversarial workload overlay ("" or "none" for the
	// baseline; see synth.ScenarioNames). The scenario runs with its
	// committed default knobs so benchmark baselines stay comparable.
	Scenario string
}

// DefaultWorkload reproduces the paper's trace scale: a department-site
// profile observed for ~90 days (the paper's January–March 1995 logs held
// 205,925 accesses from 8,474 clients).
func DefaultWorkload() WorkloadConfig {
	return WorkloadConfig{
		Profile:        webgraph.DepartmentSite(),
		Net:            netsim.DefaultConfig(),
		Days:           90,
		SessionsPerDay: 220,
		Seed:           1995,
	}
}

// SmallWorkload is a fast variant for tests and -short benchmarks: a
// 200-page site observed for two weeks. Large enough that every §2/§3
// phenomenon (three popularity classes, mutable documents, embedding and
// traversal dependencies) is present, small enough to simulate in well
// under a second.
func SmallWorkload() WorkloadConfig {
	profile := webgraph.DepartmentSite()
	profile.Name = "small-department"
	profile.Pages = 200
	profile.EntryFraction = 0.1
	return WorkloadConfig{
		Profile:        profile,
		Net:            netsim.TinyConfig(),
		Days:           14,
		SessionsPerDay: 80,
		Seed:           1995,
	}
}

// MediaWorkload swaps in the multimedia-heavy profile (the Rolling Stones
// corroboration of §2's footnote).
func MediaWorkload() WorkloadConfig {
	w := DefaultWorkload()
	w.Profile = webgraph.MediaSite()
	return w
}

// Workload is the generated world shared by the experiments.
type Workload struct {
	Config  WorkloadConfig
	Site    *webgraph.Site
	Topo    *netsim.Topology
	Trace   *trace.Trace
	Updates []synth.Update
}

// StreamWorkload is the streaming counterpart of Workload: the same site
// and topology, but the trace exists only as per-client seeded cursors
// (synth.Stream) — it is never materialized here.
type StreamWorkload struct {
	Config WorkloadConfig
	Site   *webgraph.Site
	Topo   *netsim.Topology
	Gen    *synth.Stream
}

// BuildStream generates the site and topology exactly as Build does (same
// seed-derivation labels, so the world is identical) and wraps the trace
// model in a per-client stream generator instead of materializing it.
// Identical configurations produce identical streams; scenarios are
// rejected by the streaming generator.
func BuildStream(cfg WorkloadConfig) (*StreamWorkload, error) {
	root := stats.NewRNG(cfg.Seed)
	site, err := webgraph.Generate(cfg.Profile, root.Split("site"))
	if err != nil {
		return nil, fmt.Errorf("experiments: generating site: %w", err)
	}
	topo, err := netsim.Generate(cfg.Net, root.Split("net"))
	if err != nil {
		return nil, fmt.Errorf("experiments: generating topology: %w", err)
	}
	scfg := synth.DefaultConfig(site, topo)
	scfg.Days = cfg.Days
	scfg.SessionsPerDay = cfg.SessionsPerDay
	scfg.Noise = cfg.Noise
	if cfg.Scenario != "" && cfg.Scenario != "none" {
		return nil, fmt.Errorf("experiments: scenario %q requires the materialized workload path", cfg.Scenario)
	}
	gen, err := synth.NewStream(scfg, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: building stream: %w", err)
	}
	return &StreamWorkload{Config: cfg, Site: site, Topo: topo, Gen: gen}, nil
}

// Build generates the site, topology, and trace for the configuration.
// Identical configurations produce identical workloads.
func Build(cfg WorkloadConfig) (*Workload, error) {
	root := stats.NewRNG(cfg.Seed)
	site, err := webgraph.Generate(cfg.Profile, root.Split("site"))
	if err != nil {
		return nil, fmt.Errorf("experiments: generating site: %w", err)
	}
	topo, err := netsim.Generate(cfg.Net, root.Split("net"))
	if err != nil {
		return nil, fmt.Errorf("experiments: generating topology: %w", err)
	}
	scfg := synth.DefaultConfig(site, topo)
	scfg.Days = cfg.Days
	scfg.SessionsPerDay = cfg.SessionsPerDay
	scfg.Noise = cfg.Noise
	kind, err := synth.ScenarioByName(cfg.Scenario)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	scfg.Scenario = synth.DefaultScenario(kind)
	res, err := synth.Generate(scfg, root.Split("trace"))
	if err != nil {
		return nil, fmt.Errorf("experiments: generating trace: %w", err)
	}
	return &Workload{
		Config:  cfg,
		Site:    site,
		Topo:    topo,
		Trace:   res.Trace,
		Updates: res.Updates,
	}, nil
}
