package experiments

import (
	"bytes"
	"strings"
	"testing"

	"specweb/internal/cluster"
	"specweb/internal/popularity"
	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

func TestClusterValidation(t *testing.T) {
	rows, err := ClusterValidation(7, 3, 500<<10, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	byStrategy := map[cluster.Strategy]ClusterRow{}
	for _, r := range rows {
		byStrategy[r.Strategy] = r
		if r.MeasuredAlpha < 0 || r.MeasuredAlpha > 1 {
			t.Errorf("%v: measured alpha %v", r.Strategy, r.MeasuredAlpha)
		}
	}
	exp := byStrategy[cluster.Exponential]
	if exp.PredictedAlpha <= 0 {
		t.Error("exponential strategy has no prediction")
	}
	if exp.MeasuredAlpha < byStrategy[cluster.EqualSplit].MeasuredAlpha-0.05 {
		t.Errorf("optimal allocation (%v) clearly lost to equal split (%v)",
			exp.MeasuredAlpha, byStrategy[cluster.EqualSplit].MeasuredAlpha)
	}
	if _, err := ClusterValidation(7, 1, 1, 5); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestUserProfileStudy(t *testing.T) {
	w := smallWorkload(t)
	rows, err := UserProfileStudy(w, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]UserProfileRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	up := byName["client user-profile prefetch"]
	srv := byName["server speculative service"]
	// The §3.4 structural contrast.
	if up.NovelConversions != 0 {
		t.Errorf("user profiles converted %d novel accesses", up.NovelConversions)
	}
	if srv.NovelConversions == 0 {
		t.Error("server speculation converted no novel accesses")
	}
	if up.RepeatConversions == 0 {
		t.Error("user profiles converted nothing at all")
	}
}

func TestLoadBalance(t *testing.T) {
	w := smallWorkload(t)
	rows, err := LoadBalance(w, 0.10, []int{1, 4, 8}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Root relief grows with proxies.
	for i := 1; i < len(rows); i++ {
		if rows[i].RootShedPct < rows[i-1].RootShedPct-1e-9 {
			t.Errorf("root relief fell with more proxies: %+v", rows)
		}
	}
	// The busiest proxy's share shrinks as the tier widens (the §2.3
	// bottleneck easing).
	if rows[2].MaxProxySharePct > rows[0].MaxProxySharePct+1e-9 {
		t.Errorf("busiest proxy share should fall: %.1f%% → %.1f%%",
			rows[0].MaxProxySharePct, rows[2].MaxProxySharePct)
	}
	// Shielding can only lower both the relief and the proxy shares.
	for _, r := range rows {
		if r.ShieldedRootPct > r.RootShedPct+1e-9 {
			t.Errorf("shielded relief exceeds open: %+v", r)
		}
		if r.ShieldedMaxSharePct > r.MaxProxySharePct+1e-9 {
			t.Errorf("shielded share exceeds open: %+v", r)
		}
	}
}

func TestCSVWriters(t *testing.T) {
	w := smallWorkload(t)
	var buf bytes.Buffer

	f1, err := Figure1(w, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	if err := Figure1CSV(&buf, f1); err != nil {
		t.Fatal(err)
	}
	assertCSV(t, buf.String(), "block,docs,cum_bytes,req_frac,cum_req_frac", len(f1.Rows))

	buf.Reset()
	f2, err := Figure2(3, 6.247e-7, []float64{0.5, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := Figure2CSV(&buf, f2); err != nil {
		t.Fatal(err)
	}
	assertCSV(t, buf.String(), "lambda_ratio,tight,lax", 3)

	buf.Reset()
	f3, err := Figure3(w, []float64{0.1}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := Figure3CSV(&buf, f3[0]); err != nil {
		t.Fatal(err)
	}
	assertCSV(t, buf.String(), "proxies,total_storage,reduction_pct,root_bytes,max_proxy_bytes", 2)

	buf.Reset()
	f4, err := Figure4(w, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := Figure4CSV(&buf, f4); err != nil {
		t.Fatal(err)
	}
	assertCSV(t, buf.String(), "p_bin_lo,pairs,fraction", 10)

	buf.Reset()
	f5, err := Figure5(w, []float64{0.5, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if err := Figure5CSV(&buf, f5); err != nil {
		t.Fatal(err)
	}
	assertCSV(t, buf.String(), "tp,traffic_pct,load_red_pct,time_red_pct,miss_red_pct,pushed,used", 2)
}

func assertCSV(t *testing.T, got, wantHeader string, wantRows int) {
	t.Helper()
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if lines[0] != wantHeader {
		t.Errorf("header = %q, want %q", lines[0], wantHeader)
	}
	if len(lines)-1 != wantRows {
		t.Errorf("rows = %d, want %d", len(lines)-1, wantRows)
	}
}

func TestWriteCSVRowMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []string{"a", "b"}, [][]float64{{1}}); err == nil {
		t.Error("ragged row accepted")
	}
}

// End-to-end log pipeline: synthesize with noise, serialize to Common Log
// Format, parse it back, clean it with the paper's preprocessing, and check
// the popularity analysis matches an analysis of the clean trace directly.
func TestCLFPipelineRoundTrip(t *testing.T) {
	cfg := SmallWorkload()
	cfg.Days = 5
	cfg.SessionsPerDay = 30
	clean, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	noisy := cfg
	noisy.Noise = 0.08
	dirty, err := Build(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if dirty.Trace.Len() <= clean.Trace.Len() {
		t.Fatalf("noise added nothing: %d vs %d", dirty.Trace.Len(), clean.Trace.Len())
	}

	var buf bytes.Buffer
	if err := trace.WriteCLF(&buf, dirty.Trace); err != nil {
		t.Fatal(err)
	}
	resolve := func(p string) (webgraph.DocID, bool) {
		d := dirty.Site.ByPath(p)
		if d == nil {
			return webgraph.None, false
		}
		return d.ID, true
	}
	parsed, err := trace.ParseCLF(&buf, resolve, nil)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Len() != dirty.Trace.Len() {
		t.Fatalf("CLF round trip lost requests: %d vs %d", parsed.Len(), dirty.Trace.Len())
	}
	cleaned, st := trace.Preprocess(parsed, trace.DefaultPreprocess(), resolve)
	if st.DroppedScripts == 0 || st.DroppedStatus == 0 {
		t.Errorf("preprocessing removed no junk: %+v", st)
	}

	// Analysis of the cleaned parse must agree with analysis of the clean
	// trace on totals (aliases for "/" are junk here, not renamed, so only
	// the clean-request population remains).
	aClean := popularity.Analyze(clean.Trace, clean.Site)
	aPipe := popularity.Analyze(cleaned, dirty.Site)
	if aPipe.TotalRequests != aClean.TotalRequests {
		t.Errorf("pipeline analysis saw %d requests, direct %d",
			aPipe.TotalRequests, aClean.TotalRequests)
	}
	if aPipe.AccessedBytes != aClean.AccessedBytes {
		t.Errorf("pipeline accessed bytes %d, direct %d", aPipe.AccessedBytes, aClean.AccessedBytes)
	}
}
