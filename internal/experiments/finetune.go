package experiments

import (
	"fmt"
	"time"

	"specweb/internal/cache"
	"specweb/internal/costmodel"
	"specweb/internal/simulate"
)

// StabilityRow is one configuration of §3.4's stability study: re-estimate
// every D days from the previous D' days of logs.
type StabilityRow struct {
	UpdateCycleDays int // D
	HistoryDays     int // D'
	Ratios          costmodel.Ratios
}

// Stability reproduces the §3.4 experiment set: D ∈ {1, 7, 60} at D' = 60,
// plus D' = 30 at D = 1. The paper found ≈7% absolute degradation for
// D = 60 and ≈3% for D = 7 relative to D = 1, and ≈5% improvement from
// D' = 30. Measurement starts after a warmup of max(D, D') days so that
// every configuration is evaluated with history available — without the
// warmup, a long update cycle is dominated by its empty cold-start matrix
// rather than by staleness, which is not what the paper measured.
func Stability(w *Workload, tp float64) ([]StabilityRow, error) {
	cases := []struct{ d, dp int }{
		{1, 60}, {7, 60}, {60, 60}, {1, 30},
	}
	first, last, ok := w.Trace.Span()
	if !ok {
		return nil, fmt.Errorf("experiments: empty trace")
	}
	warmup := 0
	for _, c := range cases {
		if c.d > warmup {
			warmup = c.d
		}
		if c.dp > warmup {
			warmup = c.dp
		}
	}
	// Never warm up past half the trace: short workloads still need a
	// measurement window.
	if half := int(last.Sub(first).Hours() / 48); warmup > half {
		warmup = half
	}
	measureFrom := first.Add(time.Duration(warmup) * 24 * time.Hour)
	var rows []StabilityRow
	for _, c := range cases {
		cfg := simulate.Baseline(w.Site, tp)
		cfg.UpdateCycle = c.d
		cfg.HistoryLength = c.dp
		cfg.MeasureFrom = measureFrom
		res, err := simulate.Run(w.Trace, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, StabilityRow{
			UpdateCycleDays: c.d,
			HistoryDays:     c.dp,
			Ratios:          res.Ratios,
		})
	}
	return rows, nil
}

// MaxSizeRow is one point of the §3.4 MaxSize study: a (threshold, cap)
// operating point and its outcome.
type MaxSizeRow struct {
	MaxSize int64 // 0 = ∞
	Tp      float64
	Ratios  costmodel.Ratios
}

// MaxSizeSweep explores the (T_p, MaxSize) operating surface: for each size
// cap, the threshold is swept too, because the paper's claim — "there
// exists an optimal MaxSize for each level of extra bandwidth" — is about
// the best configuration inside a traffic budget, and a cap only shows its
// worth when the threshold spends the budget it frees. Passing tps or
// sizes overrides the default grids.
func MaxSizeSweep(w *Workload, tps []float64, sizes []int64) ([]MaxSizeRow, error) {
	if len(sizes) == 0 {
		sizes = []int64{0, 256 << 10, 64 << 10, 29 << 10, 15 << 10, 8 << 10, 4 << 10, 2 << 10}
	}
	if len(tps) == 0 {
		tps = []float64{0.5, 0.25, 0.1, 0.05}
	}
	base := simulate.Baseline(w.Site, 0.5)
	sched, err := simulate.BuildSchedule(w.Trace, base)
	if err != nil {
		return nil, err
	}
	var rows []MaxSizeRow
	for _, s := range sizes {
		for _, tp := range tps {
			cfg := simulate.Baseline(w.Site, tp)
			cfg.MaxSize = s
			res, err := simulate.RunWithSchedule(w.Trace, cfg, sched)
			if err != nil {
				return nil, err
			}
			rows = append(rows, MaxSizeRow{MaxSize: s, Tp: tp, Ratios: res.Ratios})
		}
	}
	return rows, nil
}

// BestMaxSize returns the operating point with the largest server-load
// reduction whose extra traffic stays within the budget, mirroring how the
// paper reports "if only 3% extra bandwidth is tolerable, then MaxSize =
// 15KB results in the best possible reduction".
func BestMaxSize(rows []MaxSizeRow, budgetPct float64) (MaxSizeRow, error) {
	best := -1
	for i, r := range rows {
		if r.Ratios.TrafficIncreasePct() > budgetPct {
			continue
		}
		if best < 0 || r.Ratios.ServerLoadReductionPct() > rows[best].Ratios.ServerLoadReductionPct() {
			best = i
		}
	}
	if best < 0 {
		return MaxSizeRow{}, fmt.Errorf("experiments: no MaxSize fits a %.1f%% traffic budget", budgetPct)
	}
	return rows[best], nil
}

// CachingRow is one client-cache assumption of §3.4's caching study.
type CachingRow struct {
	Name           string
	SessionTimeout time.Duration
	Capacity       int64
	Ratios         costmodel.Ratios
}

// CachingTable evaluates speculation under the paper's cache assumptions:
// no cache, a single-session infinite cache (60-minute timeout), the
// baseline infinite multi-session cache, and a modest finite LRU.
func CachingTable(w *Workload, tp float64) ([]CachingRow, error) {
	// "no cache" (SessionTimeout 0) is the paper's degenerate case: with
	// nowhere to hold pushed documents, speculation cannot help — §3.4's
	// "gains are possible even in the absence of any long-term client
	// cache" refers to short per-visit caches, the 5-minute row here.
	cases := []CachingRow{
		{Name: "no cache", SessionTimeout: 0},
		{Name: "per-visit (5min)", SessionTimeout: 5 * time.Minute},
		{Name: "single-session ∞", SessionTimeout: 60 * time.Minute},
		{Name: "multi-session ∞", SessionTimeout: cache.Forever},
		{Name: "multi-session 1MB LRU", SessionTimeout: cache.Forever, Capacity: 1 << 20},
	}
	// The cache model does not affect estimation, so one schedule serves
	// every case.
	sched, err := simulate.BuildSchedule(w.Trace, simulate.Baseline(w.Site, tp))
	if err != nil {
		return nil, err
	}
	var rows []CachingRow
	for _, c := range cases {
		cfg := simulate.Baseline(w.Site, tp)
		cfg.SessionTimeout = c.SessionTimeout
		cfg.CacheCapacity = c.Capacity
		res, err := simulate.RunWithSchedule(w.Trace, cfg, sched)
		if err != nil {
			return nil, err
		}
		c.Ratios = res.Ratios
		rows = append(rows, c)
	}
	return rows, nil
}

// CooperativeRow compares plain and cooperative speculation at one
// threshold.
type CooperativeRow struct {
	Tp          float64
	Plain       costmodel.Ratios
	Cooperative costmodel.Ratios
}

// Cooperative reproduces §3.4's cooperative-clients study across
// thresholds: the digest lets the server skip documents the client holds,
// so bandwidth improves at equal (or better) gains.
func Cooperative(w *Workload, tps []float64) ([]CooperativeRow, error) {
	if len(tps) == 0 {
		tps = []float64{0.5, 0.25, 0.1}
	}
	base := simulate.Baseline(w.Site, 0.5)
	sched, err := simulate.BuildSchedule(w.Trace, base)
	if err != nil {
		return nil, err
	}
	var rows []CooperativeRow
	for _, tp := range tps {
		plain := simulate.Baseline(w.Site, tp)
		rp, err := simulate.RunWithSchedule(w.Trace, plain, sched)
		if err != nil {
			return nil, err
		}
		coop := simulate.Baseline(w.Site, tp)
		coop.Cooperative = true
		rc, err := simulate.RunWithSchedule(w.Trace, coop, sched)
		if err != nil {
			return nil, err
		}
		rows = append(rows, CooperativeRow{Tp: tp, Plain: rp.Ratios, Cooperative: rc.Ratios})
	}
	return rows, nil
}

// PrefetchRow is one delivery mode of §3.4's server-assisted prefetching
// discussion.
type PrefetchRow struct {
	Mode           simulate.Mode
	Ratios         costmodel.Ratios
	SpeculatedDocs int64
	PrefetchedDocs int64
}

// PrefetchTable compares pure speculative service (push), server-assisted
// prefetching (hints), and the hybrid protocol at one threshold.
func PrefetchTable(w *Workload, tp float64) ([]PrefetchRow, error) {
	base := simulate.Baseline(w.Site, tp)
	sched, err := simulate.BuildSchedule(w.Trace, base)
	if err != nil {
		return nil, err
	}
	var rows []PrefetchRow
	for _, mode := range []simulate.Mode{simulate.ModePush, simulate.ModeHints, simulate.ModeHybrid} {
		cfg := simulate.Baseline(w.Site, tp)
		cfg.Mode = mode
		cfg.PrefetchTp = tp
		res, err := simulate.RunWithSchedule(w.Trace, cfg, sched)
		if err != nil {
			return nil, err
		}
		rows = append(rows, PrefetchRow{
			Mode:           mode,
			Ratios:         res.Ratios,
			SpeculatedDocs: res.SpeculatedDocs,
			PrefetchedDocs: res.PrefetchedDocs,
		})
	}
	return rows, nil
}

// ClosureAblationRow compares the three dependency-matrix constructions.
type ClosureAblationRow struct {
	Name   string
	Ratios costmodel.Ratios
}

// ClosureAblation runs the DESIGN.md ablation: direct stride-estimated P*
// (the baseline), the analytic noisy-OR closure of P, and the raw windowed
// P.
func ClosureAblation(w *Workload, tp float64) ([]ClosureAblationRow, error) {
	cases := []struct {
		name              string
		closure, analytic bool
	}{
		{"P* (direct estimate)", true, false},
		{"P* (analytic closure)", true, true},
		{"raw P", false, false},
	}
	var rows []ClosureAblationRow
	for _, c := range cases {
		cfg := simulate.Baseline(w.Site, tp)
		cfg.UseClosure = c.closure
		cfg.ClosureAnalytic = c.analytic
		// A weekly refresh keeps the analytic-closure arm tractable on
		// month-scale workloads; all three arms use the same cadence so
		// the comparison stays fair.
		cfg.UpdateCycle = 7
		res, err := simulate.Run(w.Trace, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ClosureAblationRow{Name: c.name, Ratios: res.Ratios})
	}
	return rows, nil
}
