package experiments

import (
	"fmt"
	"sort"
	"time"

	"specweb/internal/costmodel"
	"specweb/internal/markov"
	"specweb/internal/simulate"
	"specweb/internal/stats"
)

// Figure4Result is the dependency-pair histogram of Figure 4.
type Figure4Result struct {
	Histogram *stats.Histogram
	Pairs     int
	Docs      int
	// EmbeddingMass is the fraction of pairs in the top bin (p ≈ 1), the
	// figure's rightmost peak.
	EmbeddingMass float64
}

// Figure4 estimates P over the workload with the paper's T_w = 5 s and bins
// the pair probabilities.
func Figure4(w *Workload, bins int) (*Figure4Result, error) {
	if bins <= 0 {
		bins = 20
	}
	m, err := markov.Estimate(w.Trace, markov.EstimateConfig{
		Window:         5 * time.Second,
		StrideTimeout:  5 * time.Second,
		MinOccurrences: 5,
	})
	if err != nil {
		return nil, err
	}
	h := m.PairHistogram(bins)
	res := &Figure4Result{Histogram: h, Pairs: m.NumPairs(), Docs: m.NumRows()}
	if h.Total() > 0 {
		res.EmbeddingMass = h.Fraction(bins - 1)
	}
	return res, nil
}

// SweepPoint is one x position of Figures 5 and 6: a speculation threshold
// and the four resulting ratios.
type SweepPoint struct {
	Tp             float64
	Ratios         costmodel.Ratios
	SpeculatedDocs int64
	UsedDocs       int64
}

// DefaultTps is the threshold sweep used by Figures 5 and 6.
func DefaultTps() []float64 {
	return []float64{0.95, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.25, 0.2, 0.15, 0.1, 0.05}
}

// Figure5 sweeps T_p under the baseline parameters, reusing one estimation
// schedule across the sweep.
func Figure5(w *Workload, tps []float64) ([]SweepPoint, error) {
	if len(tps) == 0 {
		tps = DefaultTps()
	}
	base := simulate.Baseline(w.Site, 0.5)
	sched, err := simulate.BuildSchedule(w.Trace, base)
	if err != nil {
		return nil, err
	}
	var out []SweepPoint
	for _, tp := range tps {
		cfg := simulate.Baseline(w.Site, tp)
		res, err := simulate.RunWithSchedule(w.Trace, cfg, sched)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{
			Tp:             tp,
			Ratios:         res.Ratios,
			SpeculatedDocs: res.SpeculatedDocs,
			UsedDocs:       res.UsedDocs,
		})
	}
	return out, nil
}

// Figure6 reorders a Figure 5 sweep by the traffic increase, the x axis of
// Figure 6 ("performance gains versus bandwidth used").
func Figure6(points []SweepPoint) []SweepPoint {
	out := append([]SweepPoint(nil), points...)
	sort.Slice(out, func(i, j int) bool {
		return out[i].Ratios.TrafficIncreasePct() < out[j].Ratios.TrafficIncreasePct()
	})
	return out
}

// HeadlineRow is one of §3.3's quoted operating points: the gains available
// at a given extra-traffic budget.
type HeadlineRow struct {
	ExtraTrafficPct float64
	LoadReduction   float64
	TimeReduction   float64
	MissReduction   float64
	// Tp is the (interpolated) threshold that realizes the budget.
	Tp float64
}

// Headline interpolates the Figure 5 sweep at the paper's quoted budgets
// (5%, 10%, 50%, 100% extra traffic).
func Headline(points []SweepPoint, budgets []float64) ([]HeadlineRow, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("experiments: need at least 2 sweep points")
	}
	if len(budgets) == 0 {
		budgets = []float64{5, 10, 50, 100}
	}
	sorted := Figure6(points)
	var rows []HeadlineRow
	for _, b := range budgets {
		rows = append(rows, interpolateAt(sorted, b))
	}
	return rows, nil
}

func interpolateAt(sorted []SweepPoint, budget float64) HeadlineRow {
	x := func(p SweepPoint) float64 { return p.Ratios.TrafficIncreasePct() }
	if budget <= x(sorted[0]) {
		p := sorted[0]
		return HeadlineRow{
			ExtraTrafficPct: budget,
			LoadReduction:   p.Ratios.ServerLoadReductionPct(),
			TimeReduction:   p.Ratios.ServiceTimeReductionPct(),
			MissReduction:   p.Ratios.MissRateReductionPct(),
			Tp:              p.Tp,
		}
	}
	for i := 1; i < len(sorted); i++ {
		if budget <= x(sorted[i]) {
			a, b := sorted[i-1], sorted[i]
			span := x(b) - x(a)
			t := 0.0
			if span > 0 {
				t = (budget - x(a)) / span
			}
			lerp := func(u, v float64) float64 { return u + t*(v-u) }
			return HeadlineRow{
				ExtraTrafficPct: budget,
				LoadReduction:   lerp(a.Ratios.ServerLoadReductionPct(), b.Ratios.ServerLoadReductionPct()),
				TimeReduction:   lerp(a.Ratios.ServiceTimeReductionPct(), b.Ratios.ServiceTimeReductionPct()),
				MissReduction:   lerp(a.Ratios.MissRateReductionPct(), b.Ratios.MissRateReductionPct()),
				Tp:              lerp(a.Tp, b.Tp),
			}
		}
	}
	p := sorted[len(sorted)-1]
	return HeadlineRow{
		ExtraTrafficPct: budget,
		LoadReduction:   p.Ratios.ServerLoadReductionPct(),
		TimeReduction:   p.Ratios.ServiceTimeReductionPct(),
		MissReduction:   p.Ratios.MissRateReductionPct(),
		Tp:              p.Tp,
	}
}
