package experiments

import (
	"fmt"

	"specweb/internal/cluster"
	"specweb/internal/costmodel"
	"specweb/internal/simulate"
	"specweb/internal/stats"
	"specweb/internal/synth"
	"specweb/internal/userprofile"
	"specweb/internal/webgraph"
)

// ClusterRow is one allocation strategy's outcome on a cluster of home
// servers sharing one proxy — the §2.1 model validated end to end.
type ClusterRow struct {
	Strategy       cluster.Strategy
	PredictedAlpha float64
	MeasuredAlpha  float64
}

// ClusterValidation builds n synthetic home servers (sites and traces of
// varying demand), splits a proxy budget among them with each strategy, and
// measures the intercepted fraction α on a held-out evaluation window. The
// exponential closed form (eqs. 4–5) should track both its own prediction
// and the greedy empirical optimum, and beat the naive equal split.
func ClusterValidation(seed int64, n int, budget int64, days int) ([]ClusterRow, error) {
	if n < 2 {
		return nil, fmt.Errorf("experiments: cluster needs n >= 2, got %d", n)
	}
	if days <= 1 {
		days = 20
	}
	var members []cluster.Member
	for i := 0; i < n; i++ {
		root := stats.NewRNG(seed + int64(i)*1000003)
		p := webgraph.TinySite()
		p.Name = fmt.Sprintf("member%d", i)
		site, err := webgraph.Generate(p, root.Split("site"))
		if err != nil {
			return nil, err
		}
		scfg := synth.DefaultConfig(site, nil)
		scfg.Days = days
		scfg.SessionsPerDay = float64(30 * (1 + i%4)) // varying popularity
		scfg.RemoteClients = 150
		scfg.LocalClients = 10
		res, err := synth.Generate(scfg, root.Split("trace"))
		if err != nil {
			return nil, err
		}
		members = append(members, cluster.Member{Name: p.Name, Site: site, Trace: res.Trace})
	}
	var rows []ClusterRow
	for _, s := range []cluster.Strategy{
		cluster.Exponential, cluster.GreedyEmpirical, cluster.ProportionalSplit, cluster.EqualSplit,
	} {
		res, err := cluster.Simulate(members, cluster.Config{Budget: budget, Strategy: s})
		if err != nil {
			return nil, err
		}
		rows = append(rows, ClusterRow{
			Strategy:       s,
			PredictedAlpha: res.PredictedAlpha,
			MeasuredAlpha:  res.MeasuredAlpha,
		})
	}
	return rows, nil
}

// UserProfileRow compares one prefetching scheme's outcome, including the
// repeat/novel conversion split §3.4's discussion rests on.
type UserProfileRow struct {
	Name              string
	Ratios            costmodel.Ratios
	RepeatConversions int64
	NovelConversions  int64
}

// UserProfileStudy reproduces §3.4's closing comparison: per-user
// client-initiated prefetching (from user logs) converts only
// previously-traversed documents, while server-initiated speculative
// service (from server logs) also converts first-time accesses — the
// argument for combining the two into a single protocol.
func UserProfileStudy(w *Workload, tp float64) ([]UserProfileRow, error) {
	var rows []UserProfileRow

	ucfg := userprofile.Default(w.Site)
	ucfg.PrefetchTp = tp
	ures, err := userprofile.Run(w.Trace, ucfg)
	if err != nil {
		return nil, err
	}
	rows = append(rows, UserProfileRow{
		Name:              "client user-profile prefetch",
		Ratios:            ures.Ratios,
		RepeatConversions: ures.RepeatConversions,
		NovelConversions:  ures.NovelConversions,
	})

	scfg := simulate.Baseline(w.Site, tp)
	scfg.SessionTimeout = ucfg.SessionTimeout // same cache model for a fair comparison
	sres, err := simulate.Run(w.Trace, scfg)
	if err != nil {
		return nil, err
	}
	rows = append(rows, UserProfileRow{
		Name:              "server speculative service",
		Ratios:            sres.Ratios,
		RepeatConversions: sres.RepeatConversions,
		NovelConversions:  sres.NovelConversions,
	})

	hcfg := simulate.Baseline(w.Site, tp)
	hcfg.SessionTimeout = ucfg.SessionTimeout
	hcfg.Mode = simulate.ModeHybrid
	hcfg.PrefetchTp = tp
	hres, err := simulate.Run(w.Trace, hcfg)
	if err != nil {
		return nil, err
	}
	rows = append(rows, UserProfileRow{
		Name:              "hybrid (push certain + hints)",
		Ratios:            hres.Ratios,
		RepeatConversions: hres.RepeatConversions,
		NovelConversions:  hres.NovelConversions,
	})
	return rows, nil
}
