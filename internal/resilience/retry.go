// Package resilience is the fault-tolerance toolkit for the speculative
// dissemination stack: capped jittered-exponential retries with a shared
// retry budget, a per-origin circuit breaker with half-open probing, and
// deadline-propagation helpers. The paper's §2 argument is that service
// proxies keep documents available and fast when the home server is the
// bottleneck; this package is what lets the live HTTP stack actually
// deliver that promise when the origin misbehaves instead of collapsing
// on the first transport error.
//
// Everything is stdlib-only and safe for concurrent use. Retry jitter is
// drawn from a seeded source so chaos experiments replay deterministically.
// Every retry, give-up, budget exhaustion and breaker transition is
// counted in internal/obs, so degradation is observable rather than
// silent.
package resilience

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"specweb/internal/obs"
)

// RetryConfig parameterizes a Retrier.
type RetryConfig struct {
	// MaxAttempts is the total number of attempts including the first;
	// values <= 1 disable retries entirely.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth.
	MaxDelay time.Duration
	// Multiplier grows the delay between retries (default 2).
	Multiplier float64
	// Jitter randomizes each delay by ±Jitter·delay (0..1, default 0.5).
	// Jittered delays are drawn from the seeded source so runs replay.
	Jitter float64
	// Budget bounds the total retries this Retrier will spend across all
	// calls (a global retry budget, so a flapping origin cannot amplify
	// load unboundedly); 0 means unlimited.
	Budget int64
	// Seed seeds the jitter source; the zero value uses a fixed default
	// so behaviour is deterministic unless callers opt into a stream.
	Seed int64
	// Sleep waits between attempts; nil uses a context-aware real sleep.
	// Tests inject their own to observe the backoff schedule.
	Sleep func(ctx context.Context, d time.Duration) error
}

// DefaultRetryConfig is tuned for LAN-scale origins: up to 4 attempts,
// 10ms base delay doubling to a 1s cap, half-width jitter.
func DefaultRetryConfig() RetryConfig {
	return RetryConfig{
		MaxAttempts: 4,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    time.Second,
		Multiplier:  2,
		Jitter:      0.5,
	}
}

// permanentError marks an error as not worth retrying.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// Permanent wraps err so a Retrier returns it immediately instead of
// retrying (e.g. a 404 from the origin is not transient).
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err was marked with Permanent.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// RetryStats snapshots a Retrier's activity.
type RetryStats struct {
	Attempts        int64 // operations attempted, including first tries
	Retries         int64 // re-attempts after a transient failure
	GiveUps         int64 // operations that exhausted MaxAttempts
	BudgetExhausted int64 // retries denied by the global budget
}

// Retrier runs operations with capped jittered exponential backoff.
type Retrier struct {
	cfg RetryConfig
	met retryMetrics

	mu    sync.Mutex
	rng   *rand.Rand
	spent int64
	stats RetryStats
}

type retryMetrics struct {
	retries   *obs.Counter
	giveUps   *obs.Counter
	exhausted *obs.Counter
}

// NewRetrier builds a Retrier registering its metrics in obs.Default.
func NewRetrier(cfg RetryConfig) *Retrier { return NewRetrierIn(nil, cfg) }

// NewRetrierIn builds a Retrier registering metrics in reg (nil means
// obs.Default).
func NewRetrierIn(reg *obs.Registry, cfg RetryConfig) *Retrier {
	if cfg.MaxAttempts < 1 {
		cfg.MaxAttempts = 1
	}
	if cfg.BaseDelay <= 0 {
		cfg.BaseDelay = 10 * time.Millisecond
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = time.Second
	}
	if cfg.Multiplier <= 1 {
		cfg.Multiplier = 2
	}
	if cfg.Jitter < 0 || cfg.Jitter > 1 {
		cfg.Jitter = 0.5
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Retrier{
		cfg: cfg,
		rng: rand.New(rand.NewSource(seed)),
		met: retryMetrics{
			retries:   reg.Counter("specweb_resilience_retries_total", "Operation re-attempts after a transient failure.", nil),
			giveUps:   reg.Counter("specweb_resilience_retry_giveups_total", "Operations abandoned after exhausting their attempts.", nil),
			exhausted: reg.Counter("specweb_resilience_retry_budget_exhausted_total", "Retries denied because the global retry budget ran out.", nil),
		},
	}
}

// Stats returns a snapshot of the retrier counters.
func (r *Retrier) Stats() RetryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// delay computes the jittered backoff before retry number n (1-based).
func (r *Retrier) delay(n int) time.Duration {
	d := float64(r.cfg.BaseDelay)
	for i := 1; i < n; i++ {
		d *= r.cfg.Multiplier
		if d >= float64(r.cfg.MaxDelay) {
			d = float64(r.cfg.MaxDelay)
			break
		}
	}
	if r.cfg.Jitter > 0 {
		r.mu.Lock()
		f := r.rng.Float64()
		r.mu.Unlock()
		d += d * r.cfg.Jitter * (2*f - 1)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// takeBudget claims one retry from the global budget.
func (r *Retrier) takeBudget() bool {
	if r.cfg.Budget <= 0 {
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.spent >= r.cfg.Budget {
		return false
	}
	r.spent++
	return true
}

func (r *Retrier) sleep(ctx context.Context, d time.Duration) error {
	if r.cfg.Sleep != nil {
		return r.cfg.Sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (r *Retrier) count(f func(*RetryStats)) {
	r.mu.Lock()
	f(&r.stats)
	r.mu.Unlock()
}

// Do runs op until it succeeds, returns a Permanent error, exhausts the
// attempts or budget, or ctx is done. The last error is returned.
func (r *Retrier) Do(ctx context.Context, op func(ctx context.Context) error) error {
	var last error
	for attempt := 1; ; attempt++ {
		r.count(func(s *RetryStats) { s.Attempts++ })
		last = op(ctx)
		if last == nil || IsPermanent(last) || ctx.Err() != nil {
			return last
		}
		if attempt >= r.cfg.MaxAttempts {
			r.count(func(s *RetryStats) { s.GiveUps++ })
			r.met.giveUps.Inc()
			return last
		}
		if !r.takeBudget() {
			r.count(func(s *RetryStats) { s.BudgetExhausted++ })
			r.met.exhausted.Inc()
			return last
		}
		if err := r.sleep(ctx, r.delay(attempt)); err != nil {
			return last
		}
		r.count(func(s *RetryStats) { s.Retries++ })
		r.met.retries.Inc()
	}
}
