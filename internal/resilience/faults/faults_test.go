package faults

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"specweb/internal/obs"
)

func noSleep() func(context.Context, time.Duration) {
	return func(context.Context, time.Duration) {}
}

func TestConfigEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	for _, c := range []Config{
		{ErrorRate: 0.1}, {Rate5xx: 0.1}, {TruncateRate: 0.1}, {Latency: time.Millisecond},
	} {
		if !c.Enabled() {
			t.Errorf("config %+v reports disabled", c)
		}
	}
}

func TestTransportInjectsConnectionErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer ts.Close()

	inj := New(Config{Seed: 42, ErrorRate: 0.5, Metrics: obs.NewRegistry()})
	client := &http.Client{Transport: inj.Transport(nil)}
	var errs, oks int
	for i := 0; i < 200; i++ {
		resp, err := client.Get(ts.URL)
		if err != nil {
			if !strings.Contains(err.Error(), "injected connection error") {
				t.Fatalf("unexpected error kind: %v", err)
			}
			errs++
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		oks++
	}
	if errs < 60 || errs > 140 {
		t.Errorf("injected %d errors out of 200 at rate 0.5", errs)
	}
	if st := inj.Stats(); st.Errors != int64(errs) {
		t.Errorf("stats.Errors = %d, observed %d", st.Errors, errs)
	}
}

func TestTransportDeterministicPerSeed(t *testing.T) {
	draw := func(seed int64) []bool {
		inj := New(Config{Seed: seed, ErrorRate: 0.3, Metrics: obs.NewRegistry()})
		out := make([]bool, 100)
		for i := range out {
			out[i] = inj.decide().connErr
		}
		return out
	}
	a, b := draw(9), draw(9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := draw(10)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical fault streams")
	}
}

func TestTransportInjects5xxBursts(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer ts.Close()

	inj := New(Config{Seed: 3, Rate5xx: 0.2, Burst5xx: 3, Metrics: obs.NewRegistry()})
	client := &http.Client{Transport: inj.Transport(nil)}
	var fives int
	var runLen, maxRun int
	for i := 0; i < 150; i++ {
		resp, err := client.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusInternalServerError {
			if resp.Header.Get("X-Specweb-Fault") != "5xx" {
				t.Fatal("synthetic 5xx missing marker header")
			}
			fives++
			runLen++
			if runLen > maxRun {
				maxRun = runLen
			}
		} else {
			runLen = 0
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if fives == 0 {
		t.Fatal("no 5xx injected")
	}
	if maxRun < 3 {
		t.Errorf("longest 5xx run %d, want a full burst of 3", maxRun)
	}
	if st := inj.Stats(); st.Fives != int64(fives) {
		t.Errorf("stats.Fives = %d, observed %d", st.Fives, fives)
	}
}

func TestTransportTruncatesBodies(t *testing.T) {
	const body = "0123456789abcdef0123456789abcdef"
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, body)
	}))
	defer ts.Close()

	inj := New(Config{Seed: 5, TruncateRate: 1, Metrics: obs.NewRegistry()})
	client := &http.Client{Transport: inj.Transport(nil)}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("read err = %v, want unexpected EOF", err)
	}
	if len(got) >= len(body) {
		t.Errorf("read %d bytes of %d, nothing truncated", len(got), len(body))
	}
}

func TestTransportLatency(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer ts.Close()

	var slept []time.Duration
	var mu sync.Mutex
	inj := New(Config{
		Seed: 1, Latency: 30 * time.Millisecond, LatencyJitter: 20 * time.Millisecond,
		Sleep:   func(_ context.Context, d time.Duration) { mu.Lock(); slept = append(slept, d); mu.Unlock() },
		Metrics: obs.NewRegistry(),
	})
	client := &http.Client{Transport: inj.Transport(nil)}
	for i := 0; i < 5; i++ {
		resp, err := client.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if len(slept) != 5 {
		t.Fatalf("slept %d times, want 5", len(slept))
	}
	for _, d := range slept {
		if d < 30*time.Millisecond || d >= 50*time.Millisecond {
			t.Errorf("delay %v outside [30ms,50ms)", d)
		}
	}
}

func TestMiddlewareAbortsAndErrors(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok")
	})
	inj := New(Config{Seed: 11, ErrorRate: 0.5, Metrics: obs.NewRegistry()})
	ts := httptest.NewServer(inj.Middleware(inner))
	defer ts.Close()

	var errs, oks int
	for i := 0; i < 100; i++ {
		resp, err := http.Get(ts.URL)
		if err != nil {
			errs++
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		oks++
	}
	if errs == 0 || oks == 0 {
		t.Errorf("errs=%d oks=%d, want a mix at rate 0.5", errs, oks)
	}
}

func TestMiddleware5xx(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok")
	})
	inj := New(Config{Seed: 2, Rate5xx: 1, Metrics: obs.NewRegistry()})
	ts := httptest.NewServer(inj.Middleware(inner))
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", resp.StatusCode)
	}
}

func TestMiddlewareTruncation(t *testing.T) {
	body := strings.Repeat("x", 4096)
	inner := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Length", "4096")
		io.WriteString(w, body)
	})
	inj := New(Config{Seed: 4, TruncateRate: 1, Metrics: obs.NewRegistry()})
	ts := httptest.NewServer(inj.Middleware(inner))
	defer ts.Close()

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err == nil && len(got) >= len(body) {
		t.Error("declared-length body arrived intact despite truncation")
	}
}

func TestInjectorConcurrent(t *testing.T) {
	inj := New(Config{Seed: 6, ErrorRate: 0.2, Rate5xx: 0.2, TruncateRate: 0.2, Metrics: obs.NewRegistry()})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				inj.decide()
			}
		}()
	}
	wg.Wait()
	st := inj.Stats()
	if st.Errors == 0 || st.Fives == 0 || st.Truncations == 0 {
		t.Errorf("fault mix missing kinds: %+v", st)
	}
}
