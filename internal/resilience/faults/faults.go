// Package faults injects failures into the HTTP dissemination stack so
// its resilience can be exercised reproducibly: added latency, connection
// errors, 5xx bursts, and truncated bodies, all drawn from a seeded
// source so a chaos run replays decision-for-decision. The same Injector
// works on both sides of the wire — as an http.RoundTripper wrapping a
// client transport (an unreliable network/origin as seen by one client)
// and as server middleware (an unreliable origin as seen by everyone).
//
// Injected faults are counted per kind in internal/obs
// (specweb_faults_injected_total), so a chaos experiment can report how
// much failure it actually generated next to how much the stack absorbed.
package faults

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"specweb/internal/obs"
)

// ErrInjected is the root of every synthetic connection error, so tests
// and logs can tell injected failures from real ones.
var ErrInjected = errors.New("faults: injected connection error")

// Config parameterizes an Injector. The zero value injects nothing.
type Config struct {
	// Seed makes the fault stream deterministic; 0 uses a fixed default.
	Seed int64
	// ErrorRate is the probability a request fails with a synthetic
	// connection error (client side) or an aborted connection (server
	// side).
	ErrorRate float64
	// Rate5xx is the probability a request draws a synthetic 500
	// response; each draw injects Burst5xx consecutive 500s, modelling
	// the bursty way origins actually fail.
	Rate5xx float64
	// Burst5xx is the length of each 5xx burst (default 1).
	Burst5xx int
	// Latency is added to every request, plus a uniform draw from
	// [0, LatencyJitter).
	Latency       time.Duration
	LatencyJitter time.Duration
	// TruncateRate is the probability a response body is cut short
	// mid-stream, leaving the reader with an unexpected EOF.
	TruncateRate float64
	// Sleep waits out injected latency; nil uses a context-aware real
	// sleep. Tests inject their own to keep chaos runs fast. Process-
	// local, like Metrics: both are excluded when a config that embeds
	// this one travels over the distributed-bench wire.
	Sleep func(ctx context.Context, d time.Duration) `json:"-"`
	// Metrics selects the registry; nil means obs.Default.
	Metrics *obs.Registry `json:"-"`
}

// Enabled reports whether the config injects any fault at all.
func (c Config) Enabled() bool {
	return c.ErrorRate > 0 || c.Rate5xx > 0 || c.TruncateRate > 0 ||
		c.Latency > 0 || c.LatencyJitter > 0
}

// Stats counts the faults an Injector has actually injected.
type Stats struct {
	Delays      int64
	Errors      int64
	Fives       int64 // synthetic 5xx responses
	Truncations int64
}

// Injector draws faults from a seeded stream.
type Injector struct {
	cfg Config
	met injectorMetrics

	mu        sync.Mutex
	rng       *rand.Rand
	burstLeft int
	stats     Stats
}

type injectorMetrics struct {
	delays      *obs.Counter
	errors      *obs.Counter
	fives       *obs.Counter
	truncations *obs.Counter
}

// New builds an Injector; zero-value knobs inject nothing.
func New(cfg Config) *Injector {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	if cfg.Burst5xx <= 0 {
		cfg.Burst5xx = 1
	}
	reg := cfg.Metrics
	const name = "specweb_faults_injected_total"
	const help = "Faults injected into the stack, by kind."
	return &Injector{
		cfg: cfg,
		rng: rand.New(rand.NewSource(seed)),
		met: injectorMetrics{
			delays:      reg.Counter(name, help, obs.Labels{"kind": "delay"}),
			errors:      reg.Counter(name, help, obs.Labels{"kind": "error"}),
			fives:       reg.Counter(name, help, obs.Labels{"kind": "5xx"}),
			truncations: reg.Counter(name, help, obs.Labels{"kind": "truncate"}),
		},
	}
}

// Stats returns a snapshot of the injected-fault counts.
func (i *Injector) Stats() Stats {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.stats
}

// decision is one request's worth of fault draws, taken atomically so
// the stream stays deterministic under concurrency.
type decision struct {
	delay    time.Duration
	connErr  bool
	respFive bool
	truncate bool
}

func (i *Injector) decide() decision {
	i.mu.Lock()
	defer i.mu.Unlock()
	var d decision
	d.delay = i.cfg.Latency
	if i.cfg.LatencyJitter > 0 {
		d.delay += time.Duration(i.rng.Int63n(int64(i.cfg.LatencyJitter)))
	}
	if d.delay > 0 {
		i.stats.Delays++
		i.met.delays.Inc()
	}
	if i.cfg.ErrorRate > 0 && i.rng.Float64() < i.cfg.ErrorRate {
		d.connErr = true
		i.stats.Errors++
		i.met.errors.Inc()
		return d
	}
	if i.burstLeft > 0 {
		i.burstLeft--
		d.respFive = true
	} else if i.cfg.Rate5xx > 0 && i.rng.Float64() < i.cfg.Rate5xx {
		i.burstLeft = i.cfg.Burst5xx - 1
		d.respFive = true
	}
	if d.respFive {
		i.stats.Fives++
		i.met.fives.Inc()
		return d
	}
	if i.cfg.TruncateRate > 0 && i.rng.Float64() < i.cfg.TruncateRate {
		d.truncate = true
		i.stats.Truncations++
		i.met.truncations.Inc()
	}
	return d
}

func (i *Injector) sleep(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	if i.cfg.Sleep != nil {
		i.cfg.Sleep(ctx, d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// Transport wraps base (nil means http.DefaultTransport) with fault
// injection: the unreliable network as seen by one client.
func (i *Injector) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &faultTransport{inj: i, base: base}
}

type faultTransport struct {
	inj  *Injector
	base http.RoundTripper
}

func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	d := t.inj.decide()
	t.inj.sleep(req.Context(), d.delay)
	if err := req.Context().Err(); err != nil {
		return nil, err
	}
	switch {
	case d.connErr:
		return nil, fmt.Errorf("%w: %s %s", ErrInjected, req.Method, req.URL.Path)
	case d.respFive:
		return synthetic5xx(req), nil
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil || !d.truncate || resp.Body == nil {
		return resp, err
	}
	n := resp.ContentLength / 2
	if n <= 0 {
		n = 256
	}
	resp.Body = &truncatedBody{rc: resp.Body, remaining: n}
	return resp, nil
}

// synthetic5xx builds a 500 response without touching the origin.
func synthetic5xx(req *http.Request) *http.Response {
	body := "injected server error\n"
	return &http.Response{
		Status:        "500 Internal Server Error",
		StatusCode:    http.StatusInternalServerError,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"text/plain"}, "X-Specweb-Fault": []string{"5xx"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// truncatedBody yields the first `remaining` bytes then an unexpected
// EOF, the failure shape of a connection dropped mid-transfer.
type truncatedBody struct {
	rc        io.ReadCloser
	remaining int64
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= int64(n)
	if err == io.EOF && b.remaining <= 0 {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.rc.Close() }

// Middleware wraps an http.Handler with fault injection: the unreliable
// origin as seen by every client. Connection errors abort the connection
// mid-request; truncation aborts it mid-body.
func (i *Injector) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d := i.decide()
		i.sleep(r.Context(), d.delay)
		switch {
		case d.connErr:
			// ErrAbortHandler drops the connection without a response —
			// the client sees EOF/connection reset.
			panic(http.ErrAbortHandler)
		case d.respFive:
			w.Header().Set("X-Specweb-Fault", "5xx")
			http.Error(w, "injected server error", http.StatusInternalServerError)
			return
		case d.truncate:
			next.ServeHTTP(&truncatingResponseWriter{ResponseWriter: w}, r)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// truncatingResponseWriter forwards roughly half of the declared (or
// first-write) body, then aborts the connection.
type truncatingResponseWriter struct {
	http.ResponseWriter
	limit   int64
	written int64
}

func (t *truncatingResponseWriter) Write(p []byte) (int, error) {
	if t.limit == 0 {
		if cl := t.Header().Get("Content-Length"); cl != "" {
			if n, err := strconv.ParseInt(cl, 10, 64); err == nil && n > 0 {
				t.limit = (n + 1) / 2
			}
		}
		if t.limit == 0 {
			t.limit = int64(len(p)+1) / 2
		}
	}
	if t.written >= t.limit {
		t.abort()
	}
	if over := t.written + int64(len(p)) - t.limit; over > 0 {
		n, _ := t.ResponseWriter.Write(p[:int64(len(p))-over])
		t.written += int64(n)
		t.abort()
	}
	n, err := t.ResponseWriter.Write(p)
	t.written += int64(n)
	return n, err
}

// abort pushes the partial body onto the wire, then kills the connection
// so the declared Content-Length can never be satisfied.
func (t *truncatingResponseWriter) abort() {
	if f, ok := t.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
	panic(http.ErrAbortHandler)
}
