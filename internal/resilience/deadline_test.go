package resilience

import (
	"context"
	"testing"
	"time"
)

func TestEnsureDeadlineCapsUnboundedContext(t *testing.T) {
	ctx, cancel := EnsureDeadline(context.Background(), time.Minute)
	defer cancel()
	dl, ok := ctx.Deadline()
	if !ok {
		t.Fatal("no deadline set")
	}
	if until := time.Until(dl); until > time.Minute || until < 50*time.Second {
		t.Errorf("deadline %v from now", until)
	}
}

func TestEnsureDeadlineKeepsEarlierDeadline(t *testing.T) {
	parent, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	ctx, cancel2 := EnsureDeadline(parent, time.Hour)
	defer cancel2()
	dl, ok := ctx.Deadline()
	if !ok {
		t.Fatal("deadline lost")
	}
	if time.Until(dl) > time.Second {
		t.Errorf("later deadline overrode the caller's tighter budget: %v", time.Until(dl))
	}
}

func TestEnsureDeadlineTightensLaterDeadline(t *testing.T) {
	parent, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	ctx, cancel2 := EnsureDeadline(parent, 20*time.Millisecond)
	defer cancel2()
	dl, _ := ctx.Deadline()
	if time.Until(dl) > time.Second {
		t.Errorf("deadline not tightened: %v away", time.Until(dl))
	}
}

func TestEnsureDeadlineZeroIsNoop(t *testing.T) {
	ctx, cancel := EnsureDeadline(context.Background(), 0)
	defer cancel()
	if _, ok := ctx.Deadline(); ok {
		t.Error("zero budget set a deadline")
	}
}

func TestRemaining(t *testing.T) {
	if got := Remaining(context.Background(), time.Minute); got != time.Minute {
		t.Errorf("default not returned: %v", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	if got := Remaining(ctx, time.Minute); got <= time.Minute {
		t.Errorf("remaining %v for an hour-long budget", got)
	}
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if got := Remaining(expired, time.Minute); got != 0 {
		t.Errorf("expired context reports %v", got)
	}
}
