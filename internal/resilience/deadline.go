package resilience

import (
	"context"
	"time"
)

// EnsureDeadline returns a context whose deadline is at most d from now,
// keeping any earlier deadline already on ctx — the propagation rule for
// the dissemination hot paths: a caller's tighter budget always wins, and
// no call runs unbounded. d <= 0 leaves ctx untouched.
func EnsureDeadline(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return ctx, func() {}
	}
	want := time.Now().Add(d)
	if existing, ok := ctx.Deadline(); ok && existing.Before(want) {
		return ctx, func() {}
	}
	return context.WithDeadline(ctx, want)
}

// Remaining reports the time left until ctx's deadline, or def when ctx
// has none. A context already past its deadline reports zero.
func Remaining(ctx context.Context, def time.Duration) time.Duration {
	dl, ok := ctx.Deadline()
	if !ok {
		return def
	}
	left := time.Until(dl)
	if left < 0 {
		return 0
	}
	return left
}
