package resilience

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"specweb/internal/obs"
)

// ErrOpen is returned by Allow (and Do) while the breaker is rejecting
// traffic. Callers degrade gracefully — the proxy serves stale replicas —
// instead of hammering a struggling origin.
var ErrOpen = errors.New("resilience: circuit open")

// BreakerState is the circuit state machine position.
type BreakerState int

const (
	// Closed passes traffic through, tracking the failure rate.
	Closed BreakerState = iota
	// Open rejects traffic until the cool-down elapses.
	Open
	// HalfOpen lets a bounded number of probes through; success closes
	// the circuit, failure reopens it.
	HalfOpen
)

// String renders the state for logs and metric labels.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// BreakerConfig parameterizes a Breaker.
type BreakerConfig struct {
	// Name tags the breaker's metric series and log lines (e.g. the
	// origin host it guards).
	Name string
	// Window is the number of recent outcomes the failure rate is
	// computed over (default 20).
	Window int
	// MinSamples is the minimum outcomes in the window before the rate
	// can trip the circuit (default 5), so one early failure in an idle
	// window does not open it.
	MinSamples int
	// FailureRate opens the circuit when failures/outcomes in the window
	// reaches it (default 0.5).
	FailureRate float64
	// OpenFor is the cool-down before an open circuit admits a half-open
	// probe (default 1s).
	OpenFor time.Duration
	// HalfOpenProbes is the number of consecutive probe successes needed
	// to close again (default 1).
	HalfOpenProbes int
	// Clock supplies the time; nil means time.Now. Tests inject their
	// own to step through the cool-down deterministically.
	Clock func() time.Time
	// Metrics selects the registry; nil means obs.Default.
	Metrics *obs.Registry
}

// DefaultBreakerConfig returns the stock thresholds.
func DefaultBreakerConfig() BreakerConfig {
	return BreakerConfig{
		Window:         20,
		MinSamples:     5,
		FailureRate:    0.5,
		OpenFor:        time.Second,
		HalfOpenProbes: 1,
	}
}

// BreakerStats snapshots a breaker's activity.
type BreakerStats struct {
	State     BreakerState
	Successes int64
	Failures  int64
	Rejected  int64 // calls refused while open
	Opens     int64 // closed/half-open → open transitions
}

// Breaker is a failure-rate circuit breaker with half-open probing.
type Breaker struct {
	cfg BreakerConfig
	met breakerMetrics

	mu        sync.Mutex
	state     BreakerState
	outcomes  []bool // ring of recent outcomes; true = failure
	size      int    // occupied slots
	next      int    // ring cursor
	failures  int    // failures among occupied slots
	openedAt  time.Time
	probes    int // probes in flight while half-open
	probeWins int // consecutive probe successes
	stats     BreakerStats
}

type breakerMetrics struct {
	toOpen     *obs.Counter
	toHalfOpen *obs.Counter
	toClosed   *obs.Counter
	rejected   *obs.Counter
	state      *obs.Gauge
}

// NewBreaker builds a breaker with cfg; zero fields take defaults.
func NewBreaker(cfg BreakerConfig) *Breaker {
	def := DefaultBreakerConfig()
	if cfg.Window <= 0 {
		cfg.Window = def.Window
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = def.MinSamples
	}
	if cfg.FailureRate <= 0 || cfg.FailureRate > 1 {
		cfg.FailureRate = def.FailureRate
	}
	if cfg.OpenFor <= 0 {
		cfg.OpenFor = def.OpenFor
	}
	if cfg.HalfOpenProbes <= 0 {
		cfg.HalfOpenProbes = def.HalfOpenProbes
	}
	labels := obs.Labels{"breaker": cfg.Name}
	const transitions = "specweb_breaker_transitions_total"
	const transitionsHelp = "Circuit breaker state transitions, by destination state."
	reg := cfg.Metrics
	return &Breaker{
		cfg: cfg,
		met: breakerMetrics{
			toOpen:     reg.Counter(transitions, transitionsHelp, obs.Labels{"breaker": cfg.Name, "to": "open"}),
			toHalfOpen: reg.Counter(transitions, transitionsHelp, obs.Labels{"breaker": cfg.Name, "to": "half-open"}),
			toClosed:   reg.Counter(transitions, transitionsHelp, obs.Labels{"breaker": cfg.Name, "to": "closed"}),
			rejected:   reg.Counter("specweb_breaker_rejected_total", "Calls refused while the circuit was open.", labels),
			state:      reg.Gauge("specweb_breaker_state", "Current circuit state (0 closed, 1 open, 2 half-open).", labels),
		},
		outcomes: make([]bool, cfg.Window),
	}
}

func (b *Breaker) now() time.Time {
	if b.cfg.Clock != nil {
		return b.cfg.Clock()
	}
	return time.Now()
}

// State returns the current circuit state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Stats returns a snapshot of the breaker counters.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.stats
	s.State = b.state
	return s
}

// Allow reports whether a call may proceed. While open it returns ErrOpen
// until the cool-down elapses, then admits probes one at a time in
// half-open state. Every Allow that returns nil must be matched by a
// Record with the call's outcome.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return nil
	case Open:
		if b.now().Sub(b.openedAt) < b.cfg.OpenFor {
			b.stats.Rejected++
			b.met.rejected.Inc()
			return ErrOpen
		}
		b.setStateLocked(HalfOpen)
		b.probes = 1
		b.probeWins = 0
		return nil
	default: // HalfOpen: one probe at a time
		if b.probes > 0 {
			b.stats.Rejected++
			b.met.rejected.Inc()
			return ErrOpen
		}
		b.probes = 1
		return nil
	}
}

// Record reports the outcome of a call admitted by Allow.
func (b *Breaker) Record(err error) {
	failed := err != nil
	b.mu.Lock()
	defer b.mu.Unlock()
	if failed {
		b.stats.Failures++
	} else {
		b.stats.Successes++
	}
	switch b.state {
	case HalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		if failed {
			b.trip()
			return
		}
		b.probeWins++
		if b.probeWins >= b.cfg.HalfOpenProbes {
			b.resetLocked()
			b.setStateLocked(Closed)
		}
	case Open:
		// A straggler finishing after the trip; ignore for the machine.
	default: // Closed
		b.observeLocked(failed)
		if b.size >= b.cfg.MinSamples &&
			float64(b.failures)/float64(b.size) >= b.cfg.FailureRate {
			b.trip()
		}
	}
}

// Do runs op under the breaker: Allow, run, Record.
func (b *Breaker) Do(op func() error) error {
	if err := b.Allow(); err != nil {
		return err
	}
	err := op()
	b.Record(err)
	return err
}

// observeLocked pushes one outcome into the ring.
func (b *Breaker) observeLocked(failed bool) {
	if b.size == len(b.outcomes) {
		if b.outcomes[b.next] {
			b.failures--
		}
	} else {
		b.size++
	}
	b.outcomes[b.next] = failed
	if failed {
		b.failures++
	}
	b.next = (b.next + 1) % len(b.outcomes)
}

// resetLocked clears the outcome window.
func (b *Breaker) resetLocked() {
	for i := range b.outcomes {
		b.outcomes[i] = false
	}
	b.size, b.next, b.failures = 0, 0, 0
	b.probes, b.probeWins = 0, 0
}

// trip opens the circuit. Callers hold mu.
func (b *Breaker) trip() {
	b.openedAt = b.now()
	b.stats.Opens++
	b.setStateLocked(Open)
}

func (b *Breaker) setStateLocked(s BreakerState) {
	b.state = s
	b.met.state.Set(float64(s))
	switch s {
	case Open:
		b.met.toOpen.Inc()
	case HalfOpen:
		b.met.toHalfOpen.Inc()
	case Closed:
		b.met.toClosed.Inc()
	}
}

// BreakerGroup hands out one breaker per origin, sharing a config — the
// per-origin circuit the proxy tier uses when fronting several home
// servers.
type BreakerGroup struct {
	cfg BreakerConfig

	mu sync.Mutex
	m  map[string]*Breaker
}

// NewBreakerGroup builds an empty group; each breaker takes cfg with its
// origin as the Name.
func NewBreakerGroup(cfg BreakerConfig) *BreakerGroup {
	return &BreakerGroup{cfg: cfg, m: make(map[string]*Breaker)}
}

// For returns the breaker guarding origin, creating it on first use.
func (g *BreakerGroup) For(origin string) *Breaker {
	g.mu.Lock()
	defer g.mu.Unlock()
	b, ok := g.m[origin]
	if !ok {
		cfg := g.cfg
		cfg.Name = origin
		b = NewBreaker(cfg)
		g.m[origin] = b
	}
	return b
}
