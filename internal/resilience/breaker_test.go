package resilience

import (
	"errors"
	"sync"
	"testing"
	"time"

	"specweb/internal/obs"
)

// fakeClock steps time by hand.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func testBreaker(clk *fakeClock) *Breaker {
	cfg := DefaultBreakerConfig()
	cfg.Name = "test-origin"
	cfg.Window = 10
	cfg.MinSamples = 4
	cfg.FailureRate = 0.5
	cfg.OpenFor = time.Second
	cfg.Clock = clk.Now
	cfg.Metrics = obs.NewRegistry()
	return NewBreaker(cfg)
}

var errBoom = errors.New("boom")

func TestBreakerOpensAtFailureRate(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := testBreaker(clk)
	// Three failures among four samples: 75% ≥ 50% → open.
	for _, fail := range []bool{false, true, true, true} {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker rejected: %v", err)
		}
		if fail {
			b.Record(errBoom)
		} else {
			b.Record(nil)
		}
	}
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Errorf("open breaker allowed a call: %v", err)
	}
	if st := b.Stats(); st.Opens != 1 || st.Rejected == 0 {
		t.Errorf("stats %+v", st)
	}
}

func TestBreakerStaysClosedBelowMinSamples(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := testBreaker(clk)
	// 100% failure rate but fewer than MinSamples outcomes.
	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatal(err)
		}
		b.Record(errBoom)
	}
	if b.State() != Closed {
		t.Errorf("tripped on %d samples below MinSamples", 3)
	}
}

func tripBreaker(t *testing.T, b *Breaker) {
	t.Helper()
	for i := 0; i < 4; i++ {
		if err := b.Allow(); err != nil {
			t.Fatal(err)
		}
		b.Record(errBoom)
	}
	if b.State() != Open {
		t.Fatal("breaker did not open")
	}
}

func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := testBreaker(clk)
	tripBreaker(t, b)

	clk.Advance(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("cool-down elapsed but probe rejected: %v", err)
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	// Only one probe at a time.
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Error("second concurrent probe admitted")
	}
	b.Record(nil)
	if b.State() != Closed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Errorf("recovered breaker rejected: %v", err)
	}
	b.Record(nil)
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := testBreaker(clk)
	tripBreaker(t, b)

	clk.Advance(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(errBoom)
	if b.State() != Open {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	// The cool-down restarts from the failed probe.
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Error("reopened breaker admitted a call immediately")
	}
	clk.Advance(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Errorf("second probe window rejected: %v", err)
	}
	b.Record(nil)
	if b.State() != Closed {
		t.Error("breaker did not close after eventual recovery")
	}
}

func TestBreakerMultiProbeClose(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	cfg := DefaultBreakerConfig()
	cfg.Window = 10
	cfg.MinSamples = 4
	cfg.HalfOpenProbes = 2
	cfg.Clock = clk.Now
	cfg.Metrics = obs.NewRegistry()
	b := NewBreaker(cfg)
	tripBreaker(t, b)

	clk.Advance(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(nil)
	if b.State() != HalfOpen {
		t.Fatalf("closed after 1 of 2 probes")
	}
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(nil)
	if b.State() != Closed {
		t.Error("did not close after the configured probe count")
	}
}

func TestBreakerDo(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := testBreaker(clk)
	if err := b.Do(func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		_ = b.Do(func() error { return errBoom })
	}
	if err := b.Do(func() error { return nil }); !errors.Is(err, ErrOpen) {
		t.Errorf("Do through open breaker: %v", err)
	}
}

func TestBreakerGroupPerOrigin(t *testing.T) {
	cfg := DefaultBreakerConfig()
	cfg.Metrics = obs.NewRegistry()
	g := NewBreakerGroup(cfg)
	a, b := g.For("http://a"), g.For("http://b")
	if a == b {
		t.Fatal("distinct origins share a breaker")
	}
	if g.For("http://a") != a {
		t.Error("same origin did not reuse its breaker")
	}
	// Tripping one origin leaves the other closed.
	for i := 0; i < 6; i++ {
		if err := a.Allow(); err == nil {
			a.Record(errBoom)
		}
	}
	if a.State() != Open {
		t.Error("origin a did not open")
	}
	if b.State() != Closed {
		t.Error("origin b opened sympathetically")
	}
}

func TestBreakerConcurrent(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := testBreaker(clk)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := b.Allow(); err != nil {
					clk.Advance(10 * time.Millisecond)
					continue
				}
				if (g+i)%3 == 0 {
					b.Record(errBoom)
				} else {
					b.Record(nil)
				}
			}
		}(g)
	}
	wg.Wait()
	st := b.Stats()
	if st.Successes+st.Failures == 0 {
		t.Error("no outcomes recorded")
	}
}
