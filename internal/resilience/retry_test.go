package resilience

import (
	"context"
	"errors"
	"testing"
	"time"

	"specweb/internal/obs"
)

// noSleep records the backoff schedule instead of waiting it out.
func noSleep(delays *[]time.Duration) func(context.Context, time.Duration) error {
	return func(_ context.Context, d time.Duration) error {
		*delays = append(*delays, d)
		return nil
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	var delays []time.Duration
	cfg := DefaultRetryConfig()
	cfg.Sleep = noSleep(&delays)
	r := NewRetrierIn(obs.NewRegistry(), cfg)
	calls := 0
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	st := r.Stats()
	if st.Retries != 2 || st.GiveUps != 0 {
		t.Errorf("stats %+v", st)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	var delays []time.Duration
	cfg := DefaultRetryConfig()
	cfg.MaxAttempts = 3
	cfg.Sleep = noSleep(&delays)
	r := NewRetrierIn(obs.NewRegistry(), cfg)
	calls := 0
	wantErr := errors.New("still down")
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		return wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	if st := r.Stats(); st.GiveUps != 1 {
		t.Errorf("giveups = %d, want 1", st.GiveUps)
	}
	if len(delays) != 2 {
		t.Errorf("slept %d times, want 2", len(delays))
	}
}

func TestRetryBackoffGrowsAndCaps(t *testing.T) {
	var delays []time.Duration
	cfg := RetryConfig{
		MaxAttempts: 6,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    40 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0, // exact schedule
		Sleep:       noSleep(&delays),
	}
	r := NewRetrierIn(obs.NewRegistry(), cfg)
	_ = r.Do(context.Background(), func(context.Context) error { return errors.New("x") })
	want := []time.Duration{10, 20, 40, 40, 40}
	if len(delays) != len(want) {
		t.Fatalf("delays %v", delays)
	}
	for i, w := range want {
		if delays[i] != w*time.Millisecond {
			t.Errorf("delay[%d] = %v, want %v", i, delays[i], w*time.Millisecond)
		}
	}
}

func TestRetryJitterDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []time.Duration {
		var delays []time.Duration
		cfg := DefaultRetryConfig()
		cfg.MaxAttempts = 5
		cfg.Seed = seed
		cfg.Sleep = noSleep(&delays)
		r := NewRetrierIn(obs.NewRegistry(), cfg)
		_ = r.Do(context.Background(), func(context.Context) error { return errors.New("x") })
		return delays
	}
	a, b := run(7), run(7)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("schedules %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if i < len(c) && a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical jitter")
	}
}

func TestRetryPermanentErrorNotRetried(t *testing.T) {
	r := NewRetrierIn(obs.NewRegistry(), DefaultRetryConfig())
	calls := 0
	base := errors.New("not found")
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		return Permanent(base)
	})
	if calls != 1 {
		t.Errorf("calls = %d, want 1", calls)
	}
	if !errors.Is(err, base) {
		t.Errorf("permanent wrapper hides cause: %v", err)
	}
	if !IsPermanent(err) {
		t.Error("IsPermanent lost the marker")
	}
	if IsPermanent(base) {
		t.Error("unwrapped error reported permanent")
	}
}

func TestRetryContextCancellation(t *testing.T) {
	cfg := DefaultRetryConfig()
	cfg.MaxAttempts = 10
	cfg.BaseDelay = time.Hour // would hang if the sleep ignored ctx
	r := NewRetrierIn(obs.NewRegistry(), cfg)
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	done := make(chan error, 1)
	go func() {
		done <- r.Do(ctx, func(context.Context) error {
			calls++
			cancel()
			return errors.New("transient")
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("cancelled Do returned nil")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not return after cancellation")
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1", calls)
	}
}

func TestRetryBudgetShared(t *testing.T) {
	var delays []time.Duration
	cfg := DefaultRetryConfig()
	cfg.MaxAttempts = 4
	cfg.Budget = 3
	cfg.Sleep = noSleep(&delays)
	r := NewRetrierIn(obs.NewRegistry(), cfg)
	fail := func(context.Context) error { return errors.New("x") }
	_ = r.Do(context.Background(), fail) // spends 3 retries
	calls := 0
	_ = r.Do(context.Background(), func(context.Context) error { calls++; return errors.New("x") })
	if calls != 1 {
		t.Errorf("budget-exhausted op ran %d times, want 1", calls)
	}
	if st := r.Stats(); st.BudgetExhausted == 0 {
		t.Errorf("budget exhaustion not counted: %+v", st)
	}
}

func TestRetryConcurrent(t *testing.T) {
	cfg := DefaultRetryConfig()
	cfg.BaseDelay = time.Microsecond
	cfg.MaxDelay = 10 * time.Microsecond
	r := NewRetrierIn(obs.NewRegistry(), cfg)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				n := 0
				_ = r.Do(context.Background(), func(context.Context) error {
					n++
					if n < 2 {
						return errors.New("flap")
					}
					return nil
				})
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if st := r.Stats(); st.Retries != 8*50 {
		t.Errorf("retries = %d, want %d", st.Retries, 8*50)
	}
}
