package loadgen

import (
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"specweb/internal/attrib"
	"specweb/internal/checkpoint"
	"specweb/internal/estguard"
	"specweb/internal/experiments"
	"specweb/internal/httpspec"
	"specweb/internal/obs"
	"specweb/internal/overload"
	"specweb/internal/resilience"
	"specweb/internal/resilience/faults"
	"specweb/internal/stats"
	"specweb/internal/synth"
	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

// Config parameterizes one load-generation run (one arm).
type Config struct {
	// Workload selects the synthetic site/trace model; the zero value
	// means experiments.SmallWorkload(). The trace supplies the session
	// mix: client population, per-client request order, and session
	// boundaries all come from the generated trace.
	Workload experiments.WorkloadConfig
	// Seed drives the generator's own randomness (think-time jitter)
	// through per-worker stats.RNG streams; 0 uses Workload.Seed.
	Seed int64
	// Workers is the number of concurrent client drivers (default 4).
	// Clients are partitioned across workers by a stable hash, so each
	// client's request order is preserved no matter the worker count.
	Workers int
	// WarmupFraction is the leading share of the trace replayed
	// sequentially on trace time to train the speculation engine before
	// measurement begins (default 0.3). The engine is refreshed once at
	// the warmup boundary and its model then stays frozen, which is
	// what makes the measured counters deterministic under concurrency.
	WarmupFraction float64

	// Speculate selects the arm: true drives speculative clients
	// against Mode; false drives plain clients (no bundles, no
	// prefetching) against a push-mode server, which never speculates
	// for a client that did not opt in.
	Speculate bool
	// Mode is the server's delivery mode for the speculative arm; the
	// zero value is ModePush.
	Mode httpspec.Mode
	// MaxPush bounds documents pushed per response (default 16).
	MaxPush int
	// Cooperative piggybacks cache digests; PrefetchThreshold enables
	// hint-driven prefetching (0 disables).
	Cooperative       bool
	PrefetchThreshold float64
	// SessionGapRequests ends a client's session after this many
	// requests (default 50; negative disables).
	SessionGapRequests int
	// Reps repeats each arm and keeps the best-throughput rep's Timing
	// (default 1). The deterministic section is identical across reps,
	// so extra reps only de-noise the wall-clock metrics: best-of-N is
	// what makes a 10% regression gate hold on a shared CI runner.
	Reps int

	// OpenLoop switches to paced arrival at Rate requests/second in
	// groups of Burst: the dispatcher hands requests to workers on
	// schedule without waiting for responses, and latency is measured
	// from the scheduled arrival (so queueing delay is charged — no
	// coordinated omission). The default closed loop has each worker
	// walk its clients' requests back-to-back, separated by Think.
	OpenLoop bool
	Rate     float64
	Burst    int
	// Think and ThinkJitter separate a worker's consecutive requests in
	// closed-loop mode: Think plus a uniform draw from [0, ThinkJitter)
	// off the worker's RNG stream.
	Think       time.Duration
	ThinkJitter time.Duration

	// BaseURL drives an external server instead of the in-process
	// stack. Network runs measure real sockets but cannot promise the
	// deterministic section stays byte-identical (the server's own
	// clock governs its speculation refreshes).
	BaseURL string
	// RealClock makes the in-process server use wall-clock time instead
	// of the frozen trace clock — required when an overload Governor
	// should see real latencies, at the cost of count determinism.
	RealClock bool
	// Faults injects transport faults (seeded); chaos runs are not
	// byte-deterministic because workers consume the fault stream in
	// completion order.
	Faults faults.Config
	// Timeout bounds each request attempt; Retry configures demand
	// retries through one shared budget.
	Timeout time.Duration
	Retry   resilience.RetryConfig

	// Estguard installs the estimator-hardening guard on the in-process
	// server: client classification/quarantine, drift-triggered early
	// refresh, and confidence-damped snapshots (see internal/estguard).
	// The guard's decisions are functions of the recorded trace and the
	// seed, so guarded runs remain byte-deterministic.
	Estguard bool
	// MaxRows and RowTopK select the memory-bounded streaming estimator
	// on the in-process server (see core.EngineConfig); both zero keeps
	// the exact estimator and a byte-identical report.
	MaxRows int
	RowTopK int
	// Overload installs an admission controller and governor on the
	// in-process server; AdmissionTune adjusts the controller config
	// before construction. With generous slots the controller admits
	// everything and the run stays deterministic. The tuning hooks are
	// process-local and excluded from the distributed wire job.
	Overload      bool
	AdmissionTune func(*overload.Config) `json:"-"`
	// ServerTune is the escape hatch for any other server knob.
	ServerTune func(*httpspec.ServerConfig) `json:"-"`

	// Restart, when non-nil, splits the measurement phase with a
	// simulated server crash at CrashFraction and rebuilds the stack
	// according to Mode (see RestartConfig). In-process closed-loop runs
	// only; per-phase counters land in Result.Restart.
	Restart *RestartConfig

	// Stream drives the workload from per-client seeded cursors
	// (synth.Stream) instead of a materialized trace: warmup replays the
	// canonical k-way merge sequentially, then each closed-loop worker
	// regenerates just its own clients' streams (the open loop paces from
	// a fresh global merge). Peak memory is O(clients + concurrent
	// sessions) instead of O(trace); the deterministic report section is
	// byte-identical to materializing the same stream and running the
	// ordinary path (see StreamMaterialize). Scenarios and the restart
	// harness require the materialized trace and are rejected.
	Stream bool
	// StreamMaterialize (with Stream) builds the same per-client stream
	// but materializes it into a trace and runs the ordinary drive — the
	// conformance oracle the streamed path is byte-compared against.
	StreamMaterialize bool

	// ShardIndex/ShardCount restrict the measurement phase to the
	// clients hashed to this shard (same stable hash as the worker
	// partition). Every shard replays the full warmup — so all shards
	// freeze the identical speculation model — and then drives only its
	// own clients; a coordinator merges the shards' partial reports into
	// a document byte-identical to the single-process run (see Partial).
	// ShardCount 0 or 1 means unsharded.
	ShardIndex int
	ShardCount int

	// raw, when non-nil, receives the arm's pre-aggregation state
	// (merged histogram, miss accumulators, attrib export, overload
	// freeze snapshot) for assembly into a Partial. Process-local.
	raw *armRaw
}

// armRaw is one arm's pre-aggregation state, captured for partial
// reports: everything a coordinator needs to recompute the aggregate
// formulas over merged shards instead of over one process's workers.
type armRaw struct {
	Hist           HistState
	MissDurNS      int64
	MissCount      int64
	ElapsedNS      int64
	Attrib         *attrib.Export
	OverloadFreeze *httpspec.ServerOverloadStats
}

func (c Config) withDefaults() Config {
	if c.Workload.Profile.Pages == 0 {
		c.Workload = experiments.SmallWorkload()
	}
	if c.Seed == 0 {
		c.Seed = c.Workload.Seed
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.WarmupFraction <= 0 || c.WarmupFraction >= 0.95 {
		c.WarmupFraction = 0.3
	}
	if c.MaxPush == 0 {
		c.MaxPush = 16
	}
	if c.SessionGapRequests == 0 {
		c.SessionGapRequests = 50
	}
	if c.SessionGapRequests < 0 {
		c.SessionGapRequests = 0
	}
	if c.Burst < 1 {
		c.Burst = 1
	}
	if !c.Speculate {
		c.Mode = httpspec.ModePush
		c.Cooperative = false
		c.PrefetchThreshold = 0
	}
	return c
}

// attribTopDocs is how many per-doc attribution rows a BENCH report
// carries: enough to name the heavy hitters without bloating the file.
const attribTopDocs = 10

// validateModes rejects flag combinations the streaming and sharded
// drives cannot honor.
func (c Config) validateModes() error {
	if c.ShardCount < 0 || c.ShardIndex < 0 {
		return fmt.Errorf("loadgen: negative shard index/count")
	}
	if c.ShardCount > 1 || c.ShardIndex > 0 {
		if c.ShardIndex >= c.ShardCount {
			return fmt.Errorf("loadgen: shard index %d out of range for %d shards", c.ShardIndex, c.ShardCount)
		}
		switch {
		case c.Restart != nil:
			return fmt.Errorf("loadgen: restart harness cannot run sharded")
		case c.Estguard:
			return fmt.Errorf("loadgen: estguard cannot run sharded (warmup feedback sees only shard clients)")
		case c.MaxRows > 0 || c.RowTopK > 0:
			return fmt.Errorf("loadgen: bounded-estimator stats cannot be merged across shards")
		case c.BaseURL != "":
			return fmt.Errorf("loadgen: network mode cannot run sharded (each shard replays the full warmup)")
		case c.RealClock:
			return fmt.Errorf("loadgen: real-clock mode cannot run sharded")
		case c.Faults.Enabled():
			return fmt.Errorf("loadgen: fault injection cannot run sharded (the fault stream is per-process)")
		}
	}
	if c.Stream && c.Restart != nil {
		return fmt.Errorf("loadgen: restart harness requires the materialized trace")
	}
	return nil
}

// inShard reports whether a client's measurement phase belongs to this
// process. The hash is the same stable FNV used for the in-process
// worker partition, so shard membership never depends on trace position.
func (c Config) inShard(id trace.ClientID) bool {
	if c.ShardCount <= 1 {
		return true
	}
	return workerOf(id, c.ShardCount) == c.ShardIndex
}

// countPass drains a stream once to learn its length, client set (in
// first-appearance order, matching Trace.Clients), and first timestamp —
// without retaining any request.
func countPass(s trace.Stream) (int, []trace.ClientID, time.Time) {
	var (
		n     int
		order []trace.ClientID
		first time.Time
	)
	seen := make(map[trace.ClientID]bool)
	for {
		req, ok := s.Next()
		if !ok {
			break
		}
		if n == 0 {
			first = req.Time
		}
		n++
		if !seen[req.Client] {
			seen[req.Client] = true
			order = append(order, req.Client)
		}
	}
	return n, order, first
}

func modeName(m httpspec.Mode) string {
	switch m {
	case httpspec.ModeHints:
		return "hints"
	case httpspec.ModeHybrid:
		return "hybrid"
	}
	return "push"
}

// run is the shared state of one arm.
type run struct {
	cfg     Config
	base    string
	hc      *http.Client
	srv     *httpspec.Server // nil in network mode
	clients map[trace.ClientID]*Client
	// order preserves first-appearance order for deterministic
	// aggregation (map iteration order must not leak into anything).
	order []trace.ClientID
	// aggregate stashes the merged wall-clock ledger here so partial
	// reports can export the raw histogram and miss accumulators.
	aggHist    *Hist
	missDurSum time.Duration
	missCount  int64
}

// Client pairs the protocol client with its warmup snapshot and session
// counter. crash holds the stats snapshot taken at the restart
// harness's crash barrier, so per-phase deltas can be reported.
type Client struct {
	c            *httpspec.Client
	warmup       httpspec.ClientStats
	crash        httpspec.ClientStats
	sinceSession int
}

// workerResult is one worker's wall-clock ledger.
type workerResult struct {
	hist       *Hist
	errors     int64
	missDurSum time.Duration
	missCount  int64
}

// Run executes one arm: build the workload, stand up the stack, replay
// the warmup sequentially on trace time, freeze the speculation model,
// then drive the measurement phase from Workers concurrent client
// drivers. The returned Result's Counts and Ratios are deterministic for
// a given config (virtual clock, no faults); Timing is wall-clock.
func Run(cfg Config) (*Result, *WorkloadInfo, ConfigInfo, error) {
	cfg = cfg.withDefaults()
	info := ConfigInfo{
		Profile:            cfg.Workload.Profile.Name,
		Days:               cfg.Workload.Days,
		SessionsPerDay:     cfg.Workload.SessionsPerDay,
		Seed:               cfg.Seed,
		Workers:            cfg.Workers,
		WarmupFraction:     cfg.WarmupFraction,
		Mode:               modeName(cfg.Mode),
		MaxPush:            cfg.MaxPush,
		Cooperative:        cfg.Cooperative,
		PrefetchThreshold:  cfg.PrefetchThreshold,
		SessionGapRequests: cfg.SessionGapRequests,
		Reps:               cfg.Reps,
		OpenLoop:           cfg.OpenLoop,
		Rate:               cfg.Rate,
		Burst:              cfg.Burst,
		ThinkMS:            float64(cfg.Think) / 1e6,
		RealClock:          cfg.RealClock,
		Network:            cfg.BaseURL != "",
		Chaos:              cfg.Faults.Enabled(),
		Overload:           cfg.Overload,
		Scenario:           cfg.Workload.Scenario,
		Estguard:           cfg.Estguard,
		MaxRows:            cfg.MaxRows,
		RowTopK:            cfg.RowTopK,
		Stream:             cfg.Stream,
	}
	if info.Scenario == "none" {
		info.Scenario = ""
	}
	if err := cfg.validateModes(); err != nil {
		return nil, nil, info, err
	}

	// The workload: either a materialized trace (the classic path, and
	// the StreamMaterialize oracle) or a per-client stream generator the
	// drive regenerates from on demand.
	var (
		site *webgraph.Site
		tr   *trace.Trace
		gen  *synth.Stream
	)
	if cfg.Stream {
		sw, err := experiments.BuildStream(cfg.Workload)
		if err != nil {
			return nil, nil, info, err
		}
		site = sw.Site
		if cfg.StreamMaterialize {
			tr = trace.Materialize(sw.Gen.Merged())
		} else {
			gen = sw.Gen
		}
	} else {
		wl, err := experiments.Build(cfg.Workload)
		if err != nil {
			return nil, nil, info, err
		}
		site = wl.Site
		tr = wl.Trace
	}

	var (
		n     int
		order []trace.ClientID
		first time.Time
	)
	if tr != nil {
		if n = tr.Len(); n > 0 {
			order = tr.Clients()
			first = tr.Requests[0].Time
		}
	} else {
		// Counting pass: one full generation to fix the warmup boundary
		// and client set. The streamed drive trades repeated generation
		// (cheap, CPU-bound) for never holding the trace (expensive,
		// O(requests) memory).
		n, order, first = countPass(gen.Merged())
	}
	if n == 0 {
		return nil, nil, info, fmt.Errorf("loadgen: empty trace")
	}
	warmN := int(cfg.WarmupFraction * float64(n))
	winfo := &WorkloadInfo{
		Pages:    site.NumPages(),
		Clients:  len(order),
		Trace:    n,
		Warmup:   warmN,
		Measured: n - warmN,
		Bytes:    site.TotalBytes(),
	}

	r := &run{cfg: cfg, clients: make(map[trace.ClientID]*Client)}

	// One shared attribution ledger for the speculative arm. Capacity
	// covers the whole site, so the space-saving sketch never evicts and
	// its updates commute — the report is byte-identical no matter how
	// many workers raced or in what order their sessions resolved. In a
	// sharded run only this shard's clients feed it: ledger operations
	// partition exactly by client, so the coordinator's merge of shard
	// exports reproduces the single-process ledger.
	var led *attrib.Ledger
	if cfg.Speculate {
		led = attrib.NewLedger(site.NumDocs(), obs.NewRegistry())
	}

	// The virtual clock: warmup advances it along trace time; after the
	// freeze every server-side timestamp is the warmup boundary, so the
	// engine never auto-refreshes mid-measurement and its speculation
	// model stays the frozen snapshot.
	var vnow atomic.Int64
	vnow.Store(first.UnixNano())
	vclock := func() time.Time { return time.Unix(0, vnow.Load()) }

	// maybeFaulty wraps a transport with the seeded fault injector when
	// any chaos knob is set.
	maybeFaulty := func(rt http.RoundTripper, reg *obs.Registry) http.RoundTripper {
		if !cfg.Faults.Enabled() {
			return rt
		}
		fcfg := cfg.Faults
		fcfg.Metrics = reg
		return faults.New(fcfg).Transport(rt)
	}

	rst := cfg.Restart
	if rst != nil {
		var err error
		if rst, err = rst.validate(cfg); err != nil {
			return nil, nil, info, err
		}
		info.Restart = rst
	}

	var guard *estguard.Guard
	var ckstore *checkpoint.Store
	var swap *switchHandler
	var rebuild func() (*httpspec.Server, error)
	if cfg.BaseURL != "" {
		r.base = cfg.BaseURL
		r.hc = &http.Client{Transport: maybeFaulty(nil, nil)}
	} else {
		if rst != nil && rst.Mode != RestartNone {
			// One durable store spans the crash: server A checkpoints
			// into it, server B recovers (or deliberately doesn't) from
			// it. The fingerprint binds frames to the workload identity.
			dir := rst.StateDir
			if dir == "" {
				tmp, err := os.MkdirTemp("", "specweb-restart-")
				if err != nil {
					return nil, nil, info, err
				}
				defer os.RemoveAll(tmp)
				dir = tmp
				rst.StateDir = tmp
			}
			ecfg := httpspec.DefaultServerConfig().Engine
			ecfg.MaxRows = cfg.MaxRows
			ecfg.RowTopK = cfg.RowTopK
			fp := checkpoint.Combine(ecfg.StateFingerprint(),
				checkpoint.Fingerprint(fmt.Sprintf("loadgen/v1|profile=%s|seed=%d",
					cfg.Workload.Profile.Name, cfg.Seed)))
			var err error
			ckstore, err = checkpoint.NewStore(checkpoint.StoreConfig{
				Dir: dir, Fingerprint: fp, Metrics: obs.NewRegistry(),
			})
			if err != nil {
				return nil, nil, info, err
			}
		}
		// rebuild constructs a complete fresh stack — new registry, new
		// engine, new guard — exactly as a restarted process would. The
		// restart harness calls it a second time after the crash.
		rebuild = func() (*httpspec.Server, error) {
			store := httpspec.NewSiteStore(site)
			scfg := httpspec.DefaultServerConfig()
			scfg.Mode = cfg.Mode
			scfg.MaxPush = cfg.MaxPush
			scfg.Engine.MaxRows = cfg.MaxRows
			scfg.Engine.RowTopK = cfg.RowTopK
			scfg.Metrics = obs.NewRegistry()
			scfg.Tracer = obs.NewTracer(64)
			if ckstore != nil {
				scfg.Engine.Checkpoint = ckstore
			}
			if cfg.Estguard {
				guard = estguard.New(estguard.Config{Seed: cfg.Seed, Metrics: scfg.Metrics})
				scfg.Engine.Guard = guard
				if led != nil {
					// Feed the snapshot judge from the shared client-side
					// ledger: its totals at each (sequential, warmup-phase)
					// refresh are deterministic.
					scfg.Engine.Feedback = func() (int64, int64, int64) {
						t := led.TotalsSnapshot()
						return t.Deliveries, t.Consumed, t.Wasted
					}
				}
			}
			if cfg.RealClock {
				scfg.Clock = nil // time.Now
			} else {
				scfg.Clock = vclock
				store.SetClock(vclock)
			}
			if cfg.Overload {
				ocfg := overload.Config{Clock: scfg.Clock, Metrics: scfg.Metrics}
				if cfg.AdmissionTune != nil {
					cfg.AdmissionTune(&ocfg)
				}
				scfg.Admission = overload.NewController(ocfg)
				scfg.Governor = overload.NewGovernor(overload.GovernorConfig{
					Clock:    scfg.Clock,
					Metrics:  scfg.Metrics,
					Pressure: nil,
				})
			}
			if cfg.ServerTune != nil {
				cfg.ServerTune(&scfg)
			}
			srv, err := httpspec.NewServer(store, scfg)
			if err != nil {
				return nil, err
			}
			r.srv = srv
			return srv, nil
		}
		srv, err := rebuild()
		if err != nil {
			return nil, nil, info, err
		}
		r.base = "http://specbench.invalid"
		var rt http.RoundTripper = NewHandlerTransport(srv)
		if rst != nil {
			// The swap point: clients keep their transport across the
			// crash; only the handler behind it is replaced.
			swap = newSwitchHandler(srv)
			rt = NewHandlerTransport(swap)
		}
		r.hc = &http.Client{Transport: maybeFaulty(rt, obs.NewRegistry())}
	}

	// One retrier shares the retry budget across all clients, as in
	// cmd/replay.
	var retrier *resilience.Retrier
	if cfg.Retry.MaxAttempts > 1 {
		retrier = resilience.NewRetrier(cfg.Retry)
	}
	for _, id := range order {
		r.order = append(r.order, id)
		// In a sharded run the attribution ledger is attached only to
		// this shard's clients: non-shard clients replay warmup without
		// recording deliveries, exactly the slice of ledger traffic that
		// belongs to some other shard.
		var clientLed *attrib.Ledger
		if led != nil && cfg.inShard(id) {
			clientLed = led
		}
		r.clients[id] = &Client{c: httpspec.NewClient(r.base, httpspec.ClientConfig{
			ID:                string(id),
			AcceptBundles:     cfg.Speculate,
			Cooperative:       cfg.Cooperative,
			PrefetchThreshold: cfg.PrefetchThreshold,
			HTTP:              r.hc,
			Timeout:           cfg.Timeout,
			Retrier:           retrier,
			Attrib:            clientLed,
		})}
	}

	// Warmup: sequential, on trace time, over the FULL client population
	// even when sharded — every shard must freeze the identical
	// speculation model. Auto-refreshes fire exactly as the timestamps
	// dictate.
	var warmupErrors int64
	warm := func(req *trace.Request) {
		vnow.Store(req.Time.UnixNano())
		cl := r.clients[req.Client]
		r.sessionGap(cl)
		if _, _, err := cl.c.Get(req.Path); err != nil {
			warmupErrors++
		}
	}
	freezeAt := first
	// skips[w] counts warmup-phase requests belonging to worker w's
	// shard clients: the streamed measurement workers regenerate their
	// clients' full streams and discard exactly that prefix.
	var skips []int
	if tr != nil {
		for i := 0; i < warmN; i++ {
			warm(&tr.Requests[i])
		}
		if warmN > 0 {
			freezeAt = tr.Requests[warmN-1].Time
		}
	} else {
		skips = make([]int, cfg.Workers)
		ws := gen.Merged()
		for i := 0; i < warmN; i++ {
			req, ok := ws.Next()
			if !ok {
				break
			}
			warm(&req)
			freezeAt = req.Time
			if cfg.inShard(req.Client) {
				skips[workerOf(req.Client, cfg.Workers)]++
			}
		}
	}
	vnow.Store(freezeAt.UnixNano())
	if r.srv != nil {
		r.srv.Engine().Refresh(freezeAt)
	}
	for _, id := range r.order {
		cl := r.clients[id]
		cl.warmup = cl.c.Stats()
	}

	// The overload freeze snapshot: a sharded run reports it so the
	// coordinator can reconstruct single-process totals as
	// freeze + Σ per-shard measurement deltas.
	var ovFreeze *httpspec.ServerOverloadStats
	if cfg.Overload && r.srv != nil && cfg.raw != nil {
		ov := r.srv.OverloadStats()
		ovFreeze = &ov
	}

	// Measurement: partition the remaining requests by owning worker
	// (stable client hash), preserving per-client order. A sharded run
	// drives only its own clients; the canonical order restricted to a
	// client subset is the subset's own merge order, so shard streams
	// and shard queues see identical per-client sequences.
	var queues [][]int
	if tr != nil {
		queues = make([][]int, cfg.Workers)
		for i := warmN; i < n; i++ {
			id := tr.Requests[i].Client
			if !cfg.inShard(id) {
				continue
			}
			queues[workerOf(id, cfg.Workers)] = append(queues[workerOf(id, cfg.Workers)], i)
		}
	}

	results := make([]*workerResult, cfg.Workers)
	root := stats.NewRNG(cfg.Seed).Split("loadgen")
	start := time.Now()
	var restartInfo *RestartInfo
	switch {
	case rst != nil:
		ri, rres, err := r.runRestart(tr, warmN, n, rst, ckstore, swap, rebuild, freezeAt, root)
		if err != nil {
			return nil, nil, info, err
		}
		restartInfo = ri
		results = rres
	case cfg.OpenLoop && cfg.Rate > 0:
		if gen != nil {
			r.runOpenLoopStream(gen.Merged(), warmN, results)
		} else {
			r.runOpenLoop(tr, queues, results)
		}
	default:
		var wg sync.WaitGroup
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := root.Split(fmt.Sprintf("worker-%d", w))
				if gen != nil {
					w := w
					cursors := gen.CursorsWhere(func(id trace.ClientID) bool {
						return cfg.inShard(id) && workerOf(id, cfg.Workers) == w
					})
					results[w] = r.closedWorkerStream(trace.MergeCursors(cursors), skips[w], rng)
				} else {
					results[w] = r.closedWorker(tr, queues[w], rng)
				}
			}(w)
		}
		wg.Wait()
	}
	elapsed := time.Since(start)

	res := r.aggregate(results, elapsed, warmupErrors)
	res.Restart = restartInfo
	if ckstore != nil {
		c := ckstore.Counters()
		res.Checkpoint = &c
	}
	if cfg.Overload && r.srv != nil {
		ov := r.srv.OverloadStats()
		res.Overload = &ov
	}
	if (cfg.MaxRows > 0 || cfg.RowTopK > 0) && r.srv != nil {
		res.Estimator = r.srv.Engine().Stats().Estimator
	}
	if guard != nil && r.srv != nil {
		gs := guard.StatsSnapshot()
		es := r.srv.Engine().Stats()
		res.Estguard = &EstguardInfo{
			QuarantinedClients:  gs.QuarantinedClients,
			QuarantinedRequests: gs.QuarantinedRequests,
			Promotions:          gs.Promotions,
			Demotions:           gs.Demotions,
			Refreshes:           es.Refreshes,
			EarlyRefreshes:      es.EarlyRefreshes,
			SnapshotsRejected:   es.SnapshotsRejected,
			ForcedAccepts:       gs.ForcedAccepts,
			DriftScore:          gs.DriftScore,
		}
	}
	if led != nil {
		// Drain the ledger: every speculative copy still sitting unused
		// in a session cache is waste. Client order is fixed for
		// reproducible logs, though the ledger commutes regardless.
		for _, id := range r.order {
			r.clients[id].c.ResolveOutstanding()
		}
		res.Attrib = led.Report(attribTopDocs)
	}
	if res.Timing != nil {
		// Peak-memory evidence for the streaming gate: live heap after a
		// forced collection, with the workload (trace or cursors) still
		// referenced. Wall-clock-adjacent, so it lives inside Timing.
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		res.Timing.Memory = &MemoryInfo{HeapAllocBytes: ms.HeapAlloc, SysBytes: ms.Sys}
	}
	if cfg.raw != nil {
		*cfg.raw = armRaw{
			Hist:           r.aggHist.Export(),
			MissDurNS:      int64(r.missDurSum),
			MissCount:      r.missCount,
			ElapsedNS:      int64(elapsed),
			OverloadFreeze: ovFreeze,
			Attrib:         led.Export(),
		}
	}
	return res, winfo, info, nil
}

// RunReport executes cfg as the report's speculative arm and, when
// withBaseline and cfg.Speculate, the identical workload once more with
// speculation off — the paper's baseline — then assembles the BENCH
// report with the arm-relative timing comparison.
func RunReport(cfg Config, withBaseline bool) (*Report, error) {
	specRes, winfo, cinfo, err := runBest(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{Schema: ReportSchema, Config: cinfo, Workload: *winfo, Spec: specRes}
	if withBaseline && cfg.Speculate {
		b := cfg
		b.Speculate = false
		baseRes, _, _, err := runBest(b)
		if err != nil {
			return nil, err
		}
		rep.Baseline = baseRes
		if st, bt := specRes.Timing, baseRes.Timing; st != nil && bt != nil &&
			bt.Latency.P99 > 0 && bt.Throughput > 0 {
			rep.Relative = &Relative{
				P99Ratio:        st.Latency.P99 / bt.Latency.P99,
				ThroughputRatio: st.Throughput / bt.Throughput,
			}
		}
	}
	return rep, nil
}

// runBest executes one arm cfg.Reps times, keeping the first rep's
// result with the fastest rep's Timing substituted in. Counts are
// byte-identical across fault-free reps, so this sharpens only the
// wall-clock section.
func runBest(cfg Config) (*Result, *WorkloadInfo, ConfigInfo, error) {
	res, winfo, cinfo, err := Run(cfg)
	if err != nil {
		return nil, nil, cinfo, err
	}
	for i := 1; i < cfg.Reps; i++ {
		again, _, _, err := Run(cfg)
		if err != nil {
			return nil, nil, cinfo, err
		}
		if t := again.Timing; t != nil &&
			(res.Timing == nil || t.Throughput > res.Timing.Throughput) {
			res.Timing = t
		}
	}
	return res, winfo, cinfo, nil
}

// sessionGap applies the request-count session purge; callers own the
// client (dispatcher during warmup, the owning worker afterwards).
func (r *run) sessionGap(cl *Client) {
	if r.cfg.SessionGapRequests > 0 && cl.sinceSession >= r.cfg.SessionGapRequests {
		cl.c.EndSession()
		cl.sinceSession = 0
	}
	cl.sinceSession++
}

// workerOf assigns a client to a worker by stable hash, so the partition
// does not depend on trace position or map order.
func workerOf(id trace.ClientID, workers int) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(id))
	return int(h.Sum32() % uint32(workers))
}

// closedWorkerStream walks the worker's own merged client streams
// back-to-back, discarding the first skip requests (the warmup prefix,
// already replayed sequentially — regeneration is how the streamed drive
// avoids ever buffering it). The request sequence equals the
// materialized worker's queue by the canonical-order restriction
// property.
func (r *run) closedWorkerStream(s trace.Stream, skip int, rng *stats.RNG) *workerResult {
	res := &workerResult{hist: NewHist()}
	for i := 0; ; i++ {
		req, ok := s.Next()
		if !ok {
			break
		}
		if i < skip {
			continue
		}
		cl := r.clients[req.Client]
		r.sessionGap(cl)
		if d := r.think(rng); d > 0 {
			time.Sleep(d)
		}
		start := time.Now()
		_, fromCache, err := cl.c.Get(req.Path)
		res.observe(time.Since(start), fromCache, err)
	}
	return res
}

// closedWorker walks its queue back-to-back with optional think time.
func (r *run) closedWorker(tr *trace.Trace, queue []int, rng *stats.RNG) *workerResult {
	res := &workerResult{hist: NewHist()}
	for _, idx := range queue {
		req := &tr.Requests[idx]
		cl := r.clients[req.Client]
		r.sessionGap(cl)
		if d := r.think(rng); d > 0 {
			time.Sleep(d)
		}
		start := time.Now()
		_, fromCache, err := cl.c.Get(req.Path)
		res.observe(time.Since(start), fromCache, err)
	}
	return res
}

func (r *run) think(rng *stats.RNG) time.Duration {
	d := r.cfg.Think
	if j := r.cfg.ThinkJitter; j > 0 {
		d += time.Duration(rng.Float64() * float64(j))
	}
	return d
}

func (res *workerResult) observe(d time.Duration, fromCache bool, err error) {
	if err != nil {
		if !errors.Is(err, httpspec.ErrShed) {
			res.errors++
		}
		return
	}
	res.hist.Observe(d)
	if !fromCache {
		res.missDurSum += d
		res.missCount++
	}
}

// openItem is one paced arrival.
type openItem struct {
	idx int
	at  time.Time
}

// runOpenLoop paces arrivals at Rate/Burst and hands each to its owning
// worker; workers drain their channels sequentially, so per-client order
// holds while the dispatcher never waits for responses. Latency is
// charged from the scheduled arrival time.
func (r *run) runOpenLoop(tr *trace.Trace, queues [][]int, results []*workerResult) {
	cfg := r.cfg
	interval := time.Duration(float64(cfg.Burst) / cfg.Rate * float64(time.Second))
	chans := make([]chan openItem, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		chans[w] = make(chan openItem, len(queues[w])+1)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := &workerResult{hist: NewHist()}
			for it := range chans[w] {
				req := &tr.Requests[it.idx]
				cl := r.clients[req.Client]
				r.sessionGap(cl)
				_, fromCache, err := cl.c.Get(req.Path)
				res.observe(time.Since(it.at), fromCache, err)
			}
			results[w] = res
		}(w)
	}
	next := time.Now()
	dispatched := 0
	// Walk measurement requests in global order for pacing.
	total := 0
	for _, q := range queues {
		total += len(q)
	}
	cursor := make([]int, cfg.Workers)
	// Reconstruct global order by merging queue indexes (they are
	// already globally ordered within each queue; the overall global
	// order is by trace index).
	for dispatched < total {
		best, bestIdx := -1, -1
		for w := 0; w < cfg.Workers; w++ {
			if cursor[w] < len(queues[w]) {
				if idx := queues[w][cursor[w]]; bestIdx == -1 || idx < bestIdx {
					best, bestIdx = w, idx
				}
			}
		}
		if dispatched > 0 && dispatched%cfg.Burst == 0 {
			next = next.Add(interval)
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
		}
		chans[best] <- openItem{idx: bestIdx, at: next}
		cursor[best]++
		dispatched++
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
}

// openReq is one paced arrival carried by value — the streamed open loop
// never holds more than the bounded channel buffers.
type openReq struct {
	req trace.Request
	at  time.Time
}

// openStreamBuffer bounds each worker's in-flight arrival queue in the
// streamed open loop. The dispatcher blocks when a worker falls this far
// behind; latency is still charged from the scheduled arrival time, so a
// stall surfaces as queueing delay, never as coordinated omission.
const openStreamBuffer = 1024

// runOpenLoopStream paces arrivals straight off the canonical merged
// stream: discard the warmup prefix (already replayed), then hand each
// in-shard request to its owning worker at Rate/Burst. Memory is
// O(workers · openStreamBuffer) instead of O(trace).
func (r *run) runOpenLoopStream(s trace.Stream, skip int, results []*workerResult) {
	cfg := r.cfg
	interval := time.Duration(float64(cfg.Burst) / cfg.Rate * float64(time.Second))
	chans := make([]chan openReq, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		chans[w] = make(chan openReq, openStreamBuffer)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := &workerResult{hist: NewHist()}
			for it := range chans[w] {
				cl := r.clients[it.req.Client]
				r.sessionGap(cl)
				_, fromCache, err := cl.c.Get(it.req.Path)
				res.observe(time.Since(it.at), fromCache, err)
			}
			results[w] = res
		}(w)
	}
	next := time.Now()
	dispatched := 0
	for i := 0; ; i++ {
		req, ok := s.Next()
		if !ok {
			break
		}
		if i < skip || !r.cfg.inShard(req.Client) {
			continue
		}
		if dispatched > 0 && dispatched%cfg.Burst == 0 {
			next = next.Add(interval)
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
		}
		chans[workerOf(req.Client, cfg.Workers)] <- openReq{req: req, at: next}
		dispatched++
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
}

// aggregate folds worker ledgers and client counters into the Result.
func (r *run) aggregate(results []*workerResult, elapsed time.Duration, warmupErrors int64) *Result {
	hist := NewHist()
	var errors, missCount int64
	var missDurSum time.Duration
	for _, wr := range results {
		if wr == nil {
			continue
		}
		hist.Merge(wr.hist)
		errors += wr.errors
		missDurSum += wr.missDurSum
		missCount += wr.missCount
	}
	r.aggHist, r.missDurSum, r.missCount = hist, missDurSum, missCount

	var c Counts
	c.Errors = errors
	for _, id := range r.order {
		cl := r.clients[id]
		cs, ws := cl.c.Stats(), cl.warmup
		c.Requests += cs.Fetches - ws.Fetches
		c.CacheHits += cs.CacheHits - ws.CacheHits
		c.SpecHits += cs.SpecHits - ws.SpecHits
		c.Pushed += cs.Pushed - ws.Pushed
		c.Prefetched += cs.Prefetched - ws.Prefetched
		c.Shed += cs.Shed - ws.Shed
		c.Retries += cs.Retries - ws.Retries
		c.StaleServes += cs.StaleServes - ws.StaleServes
		c.BytesIn += cs.BytesIn - ws.BytesIn
		c.DemandBytes += cs.DemandBytes - ws.DemandBytes
		c.MissBytes += cs.MissBytes - ws.MissBytes
		c.SpecHitBytes += cs.SpecHitBytes - ws.SpecHitBytes
	}
	c.BaselineBytes = c.MissBytes + c.SpecHitBytes
	c.WarmupErrors = warmupErrors

	ratios := Ratios{
		Bandwidth:    ratio(float64(c.BytesIn), float64(c.BaselineBytes)),
		ServerLoad:   ratio(float64(c.Requests-c.CacheHits+c.Prefetched), float64(c.Requests-c.CacheHits+c.SpecHits)),
		ByteMissRate: ratio(float64(c.MissBytes), float64(c.BaselineBytes)),
	}

	timing := &Timing{
		DurationSeconds: elapsed.Seconds(),
		Latency:         quantiles(hist),
		Histogram:       hist.Buckets(),
		ServiceTime:     1,
	}
	if elapsed > 0 {
		timing.Throughput = float64(hist.Count()) / elapsed.Seconds()
	}
	if n := hist.Count(); n > 0 {
		var meanMiss time.Duration
		if missCount > 0 {
			meanMiss = missDurSum / time.Duration(missCount)
		}
		observed := float64(hist.sum)
		baseline := observed + float64(c.SpecHits)*float64(meanMiss)
		timing.ServiceTime = ratio(observed, baseline)
	}

	return &Result{Counts: c, Ratios: ratios, Timing: timing}
}

func ratio(spec, baseline float64) float64 {
	if baseline <= 0 {
		return 1
	}
	return spec / baseline
}
