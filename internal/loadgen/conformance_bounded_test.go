package loadgen

import (
	"bytes"
	"fmt"
	"testing"

	"specweb/internal/leakcheck"
	"specweb/internal/markov"
)

// boundedCellConfig is cellConfig with the memory-bounded estimator
// switched on at the given caps.
func boundedCellConfig(spec, chaos, over bool, maxRows, rowTopK int) Config {
	cfg := cellConfig(spec, chaos, over)
	cfg.MaxRows = maxRows
	cfg.RowTopK = rowTopK
	return cfg
}

// normalizeBounded clears the fields that exist only on bounded-estimator
// reports — the caps echoed in the config section and the estimator
// ledger — so a bounded report can be byte-compared against an exact one.
// Everything else must match without help.
func normalizeBounded(rep *Report) {
	rep.Config.MaxRows = 0
	rep.Config.RowTopK = 0
	if rep.Spec != nil {
		rep.Spec.Estimator = nil
	}
	if rep.Baseline != nil {
		rep.Baseline.Estimator = nil
	}
}

// TestConformanceBoundedOracle is the differential acceptance gate: with
// caps comfortably above the tiny site's true row widths (so nothing is
// ever evicted), the bounded estimator must reproduce the exact
// estimator's deterministic report byte-for-byte in every deterministic
// cell of the spec × chaos × overload cube. Only the bounded-only report
// fields (the cap echo and the estimator ledger) are normalized away —
// every count, every byte total, every decision must match without
// tolerance. Chaos cells are not byte-deterministic even exact-vs-exact
// (wall-clock retry scheduling), matching TestConformanceMatrix they are
// held to the availability floor and the no-eviction ledger instead.
func TestConformanceBoundedOracle(t *testing.T) {
	leakcheck.Check(t)
	for _, spec := range []bool{false, true} {
		for _, chaos := range []bool{false, true} {
			for _, over := range []bool{false, true} {
				name := fmt.Sprintf("spec=%v/chaos=%v/overload=%v", spec, chaos, over)
				t.Run(name, func(t *testing.T) {
					bounded, err := RunReport(boundedCellConfig(spec, chaos, over, 4096, 512), false)
					if err != nil {
						t.Fatal(err)
					}
					if bounded.Spec == nil || bounded.Spec.Estimator == nil {
						t.Fatal("bounded run missing the estimator ledger in its report")
					}
					if st := bounded.Spec.Estimator; st.EvictedRows != 0 || st.EvictedPairs != 0 {
						t.Fatalf("caps sized for the oracle regime still evicted: %+v — "+
							"raise them or the comparison is testing the wrong thing", st)
					}
					if chaos {
						c := bounded.Spec.Counts
						if c.Requests == 0 {
							t.Fatal("bounded chaos cell measured nothing")
						}
						if avail := 1 - float64(c.Errors)/float64(c.Requests); avail < 0.5 {
							t.Errorf("bounded availability %.2f < 0.5 under chaos", avail)
						}
						return
					}
					exact, err := RunReport(cellConfig(spec, chaos, over), false)
					if err != nil {
						t.Fatal(err)
					}
					if exact.Spec.Estimator != nil {
						t.Fatal("exact run leaked an estimator ledger — report byte-compat broken")
					}
					normalizeBounded(bounded)
					a, _ := exact.DeterministicJSON()
					b, _ := bounded.DeterministicJSON()
					if !bytes.Equal(a, b) {
						t.Errorf("bounded (no-eviction) diverged from exact:\n%s\n--- vs ---\n%s", a, b)
					}
				})
			}
		}
	}
}

// TestConformanceBoundedHighConcurrency extends the workers-1-vs-16
// determinism pin to the bounded estimator — including under caps tight
// enough that space-saving eviction is active, where the estimator state
// is order-dependent and only stays reproducible because the refresh path
// feeds it a canonically ordered event stream regardless of how many
// goroutines raced to record the traffic.
func TestConformanceBoundedHighConcurrency(t *testing.T) {
	leakcheck.Check(t)
	for _, caps := range []struct {
		name             string
		maxRows, rowTopK int
	}{{"large-caps", 4096, 512}, {"tight-caps", 24, 2}} {
		t.Run(caps.name, func(t *testing.T) {
			serial := boundedCellConfig(true, false, false, caps.maxRows, caps.rowTopK)
			serial.Workers = 1
			rep1, err := RunReport(serial, false)
			if err != nil {
				t.Fatal(err)
			}
			wide := boundedCellConfig(true, false, false, caps.maxRows, caps.rowTopK)
			wide.Workers = 16
			rep16, err := RunReport(wide, false)
			if err != nil {
				t.Fatal(err)
			}
			a, _ := rep1.DeterministicJSON()
			rep16.Config.Workers = rep1.Config.Workers
			b, _ := rep16.DeterministicJSON()
			if !bytes.Equal(a, b) {
				t.Errorf("bounded workers=1 vs workers=16 diverged:\n%s\n--- vs ---\n%s", a, b)
			}
		})
	}
}

// TestConformanceBoundedInterception quantifies what bounding costs: at
// the default caps the spec-arm interception rate must sit within 2% of
// the exact baseline (on this workload the caps are not even reached, so
// the counts match exactly); under deliberately starved caps the
// estimator must visibly evict, keep speculating, and still retain at
// least half the exact interception — degraded, but bounded degradation.
func TestConformanceBoundedInterception(t *testing.T) {
	leakcheck.Check(t)
	exact, err := RunReport(cellConfig(true, false, false), false)
	if err != nil {
		t.Fatal(err)
	}
	hitRate := func(rep *Report) float64 {
		c := rep.Spec.Counts
		if c.Requests == 0 {
			t.Fatal("run measured nothing")
		}
		return float64(c.SpecHits) / float64(c.Requests)
	}
	exactRate := hitRate(exact)
	if exactRate == 0 {
		t.Fatal("exact spec arm intercepted nothing; test vacuous")
	}

	d := markov.DefaultBounded()
	def, err := RunReport(boundedCellConfig(true, false, false, d.MaxRows, d.RowTopK), false)
	if err != nil {
		t.Fatal(err)
	}
	if r := hitRate(def); r < exactRate*0.98 || r > exactRate*1.02 {
		t.Errorf("default-cap interception %.4f outside ±2%% of exact %.4f", r, exactRate)
	}

	tight, err := RunReport(boundedCellConfig(true, false, false, 24, 2), false)
	if err != nil {
		t.Fatal(err)
	}
	st := tight.Spec.Estimator
	if st == nil || st.EvictedPairs == 0 {
		t.Fatalf("starved caps evicted nothing (%+v); the degradation arm is vacuous", st)
	}
	if st.TrackedRows > 24 {
		t.Errorf("tracked rows %d exceed MaxRows=24", st.TrackedRows)
	}
	r := hitRate(tight)
	t.Logf("interception: exact %.4f, default caps %.4f, starved caps %.4f (evicted %d pairs, %d rows)",
		exactRate, hitRate(def), r, st.EvictedPairs, st.EvictedRows)
	if r == 0 {
		t.Error("starved caps killed speculation entirely")
	}
	if r < exactRate*0.5 {
		t.Errorf("starved-cap interception %.4f fell below half of exact %.4f", r, exactRate)
	}
}
