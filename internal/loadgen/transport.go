package loadgen

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
)

// handlerTransport is an http.RoundTripper that invokes an http.Handler
// directly — no sockets, no syscalls — so in-process benches measure the
// speculative stack, not the loopback interface. The full protocol
// surface (headers, status, multipart bundle bodies) passes through
// unchanged.
type handlerTransport struct {
	h http.Handler
}

// NewHandlerTransport wraps handler as a RoundTripper.
func NewHandlerTransport(h http.Handler) http.RoundTripper {
	return handlerTransport{h: h}
}

// responseRecorder is the minimal ResponseWriter the speculative server
// needs (it never hijacks or flushes mid-request).
type responseRecorder struct {
	header http.Header
	body   bytes.Buffer
	status int
}

func (r *responseRecorder) Header() http.Header { return r.header }

func (r *responseRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
}

func (r *responseRecorder) Write(p []byte) (int, error) {
	r.WriteHeader(http.StatusOK)
	return r.body.Write(p)
}

func (t handlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.URL == nil {
		return nil, fmt.Errorf("loadgen: request without URL")
	}
	inner := req.Clone(req.Context())
	if inner.Body == nil {
		inner.Body = http.NoBody
	}
	rec := &responseRecorder{header: make(http.Header)}
	t.h.ServeHTTP(rec, inner)
	if rec.status == 0 {
		rec.status = http.StatusOK
	}
	body := rec.body.Bytes()
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", rec.status, http.StatusText(rec.status)),
		StatusCode:    rec.status,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        rec.header,
		Body:          io.NopCloser(bytes.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}, nil
}
