package loadgen

import (
	"math"
	"reflect"
	"testing"
	"time"

	"specweb/internal/stats"
)

// TestHistMergePartitionProperty is the merge law the distributed
// coordinator leans on: for ANY partition of an observation stream into
// sub-histograms, merging the parts reproduces the whole-stream
// histogram exactly — counts, n, sum, min, max, and therefore every
// quantile. Checked over randomized streams and randomized partitions.
func TestHistMergePartitionProperty(t *testing.T) {
	rng := stats.NewRNG(99)
	for trial := 0; trial < 50; trial++ {
		nSamples := 1 + rng.Intn(400)
		nParts := 1 + rng.Intn(8)
		whole := NewHist()
		parts := make([]*Hist, nParts)
		for i := range parts {
			parts[i] = NewHist()
		}
		for i := 0; i < nSamples; i++ {
			// Log-uniform across the bucketed range plus outliers on both
			// sides, so clamping paths are exercised too.
			d := time.Duration(float64(histMin) * math.Pow(2, rng.Float64()*32-1))
			whole.Observe(d)
			parts[rng.Intn(nParts)].Observe(d)
		}
		merged := NewHist()
		for _, p := range parts {
			merged.Merge(p)
		}
		if !reflect.DeepEqual(whole.Export(), merged.Export()) {
			t.Fatalf("trial %d: partition merge diverged:\nwhole  %+v\nmerged %+v",
				trial, whole.Export(), merged.Export())
		}
		for _, q := range []float64{0.5, 0.9, 0.99, 1} {
			if a, b := whole.Quantile(q), merged.Quantile(q); a != b {
				t.Fatalf("trial %d: q%.2f diverged: %v vs %v", trial, q, a, b)
			}
		}
	}
}

// TestHistMergeOverflowSaturates pins the int64-bound behavior: counts
// near MaxInt64 saturate instead of wrapping negative, for both Observe
// and Merge.
func TestHistMergeOverflowSaturates(t *testing.T) {
	a := NewHist()
	a.Observe(time.Millisecond)
	a.n = math.MaxInt64 - 1
	a.counts[bucketOf(time.Millisecond)] = math.MaxInt64 - 1
	a.sum = time.Duration(math.MaxInt64 - 1)

	a.Observe(time.Millisecond)
	if a.n != math.MaxInt64 {
		t.Errorf("n = %d, want saturation at MaxInt64", a.n)
	}
	a.Observe(time.Millisecond) // once saturated, stays saturated
	if a.n != math.MaxInt64 || a.n < 0 {
		t.Errorf("n = %d after post-saturation observe", a.n)
	}
	if a.sum < 0 || int64(a.sum) != math.MaxInt64 {
		t.Errorf("sum wrapped: %d", a.sum)
	}
	if c := a.counts[bucketOf(time.Millisecond)]; c != math.MaxInt64 {
		t.Errorf("bucket count = %d, want MaxInt64", c)
	}

	b := NewHist()
	b.Observe(time.Millisecond)
	b.n = math.MaxInt64 / 2
	c := NewHist()
	c.Observe(2 * time.Millisecond)
	c.n = math.MaxInt64/2 + 17
	b.Merge(c)
	if b.n < 0 {
		t.Errorf("merged n wrapped negative: %d", b.n)
	}
}

// TestHistExportImportRoundTrip pins the wire form.
func TestHistExportImportRoundTrip(t *testing.T) {
	h := NewHist()
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * 137 * time.Microsecond)
	}
	st := h.Export()
	back, err := ImportHist(st)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h.Export(), back.Export()) {
		t.Fatal("round trip changed the histogram")
	}
	st.Counts = make([]int64, histBuckets+1)
	if _, err := ImportHist(st); err == nil {
		t.Fatal("oversized bucket layout accepted")
	}
}
