package loadgen

import (
	"bytes"
	"fmt"
	"testing"

	"specweb/internal/leakcheck"
)

// scenarioCellConfig builds one cell of the adversarial conformance
// matrix: the tiny workload stretched to four days so the warmup phase
// crosses at least one estimator refresh (classification and drift
// scoring only act at refresh boundaries).
func scenarioCellConfig(scenario string, guard bool) Config {
	cfg := tinyConfig()
	cfg.Workload.Days = 4
	cfg.Workload.SessionsPerDay = 40
	cfg.Workload.Scenario = scenario
	cfg.Estguard = guard
	return cfg
}

// TestScenarioConformanceMatrix extends the determinism conformance matrix
// with the adversarial scenario × estguard cube. For every cell the
// single-worker and 16-worker runs must produce byte-identical
// deterministic reports: quarantine decisions, drift scores, and snapshot
// judgments are all functions of the refresh-time trace (sorted before
// any guard mutation), so no shard-drain interleaving may change them.
func TestScenarioConformanceMatrix(t *testing.T) {
	leakcheck.Check(t)
	scenarios := []string{"", "flash-crowd", "diurnal", "crawler", "long-tail-scan", "multi-tenant"}
	for _, sc := range scenarios {
		for _, guard := range []bool{false, true} {
			label := sc
			if label == "" {
				label = "clean"
			}
			t.Run(fmt.Sprintf("%s/estguard=%v", label, guard), func(t *testing.T) {
				serial := scenarioCellConfig(sc, guard)
				serial.Workers = 1
				rep1, err := RunReport(serial, false)
				if err != nil {
					t.Fatal(err)
				}
				wide := scenarioCellConfig(sc, guard)
				wide.Workers = 16
				rep16, err := RunReport(wide, false)
				if err != nil {
					t.Fatal(err)
				}
				a, _ := rep1.DeterministicJSON()
				rep16.Config.Workers = rep1.Config.Workers
				b, _ := rep16.DeterministicJSON()
				if !bytes.Equal(a, b) {
					t.Errorf("workers=1 vs workers=16 diverged:\n%s\n--- vs ---\n%s", a, b)
				}

				es := rep1.Spec.Estguard
				if !guard && es != nil {
					t.Error("estguard section present with the guard off")
				}
				if guard {
					if es == nil {
						t.Fatal("estguard section missing with the guard on")
					}
					if es.Refreshes == 0 {
						t.Error("guarded run recorded no refreshes")
					}
					if sc == "crawler" && es.QuarantinedClients == 0 {
						t.Error("crawler scenario quarantined no clients")
					}
				}
			})
		}
	}
}

// TestScenarioSuiteInvariants runs the full specbench scenario suite on
// the tiny workload and checks only the structural pieces that hold at
// any scale: the suite produces every arm, the schema is stamped, and a
// second run is byte-identical outside the wall-clock fields.
func TestScenarioSuiteInvariants(t *testing.T) {
	leakcheck.Check(t)
	base := scenarioCellConfig("", true)
	rep, err := RunScenarioSuite(base)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != ScenarioReportSchema {
		t.Errorf("schema = %q, want %q", rep.Schema, ScenarioReportSchema)
	}
	if len(rep.Arms) != len(scenarioSuite) {
		t.Fatalf("suite produced %d arms, want %d", len(rep.Arms), len(scenarioSuite))
	}
	for _, cell := range scenarioSuite {
		if rep.Arm(cell.name) == nil {
			t.Errorf("arm %s missing", cell.name)
		}
	}
	again, err := RunScenarioSuite(base)
	if err != nil {
		t.Fatal(err)
	}
	strip := func(r *ScenarioReport) []ScenarioArm {
		arms := append([]ScenarioArm(nil), r.Arms...)
		for i := range arms {
			arms[i].P99MS = 0
		}
		return arms
	}
	aj, _ := (&ScenarioReport{Schema: rep.Schema, Arms: strip(rep)}).JSON()
	bj, _ := (&ScenarioReport{Schema: again.Schema, Arms: strip(again)}).JSON()
	if !bytes.Equal(aj, bj) {
		t.Errorf("suite reruns diverged:\n%s\n--- vs ---\n%s", aj, bj)
	}
}
