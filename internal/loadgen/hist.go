// Package loadgen is specweb's deterministic workload generator: it
// drives a real httpspec server (in-process or over the network) with the
// synthetic trace model's session mix, from multiple workers with
// per-worker RNG streams, in open- or closed-loop arrival, and emits a
// machine-readable BENCH report (throughput, log-bucketed latency
// percentiles, error/shed/stale counts, and the paper's four ratios).
//
// Determinism contract: with the default virtual server clock, the same
// Config produces byte-identical deterministic sections (counts and
// count-based ratios) no matter how many workers run or how they
// interleave. The warmup phase replays sequentially on trace time, the
// engine's speculation model is frozen with one explicit Refresh, and the
// measurement phase then reads only that frozen snapshot plus per-client
// caches — every counter is an order-independent sum. Only the wall-clock
// timing section varies between runs.
package loadgen

import (
	"fmt"
	"math"
	"time"
)

// histGrowth is the geometric bucket growth factor: four buckets per
// doubling keeps the relative quantile error under ~9%.
const histGrowth = 4

// histMin and histMax bound the bucketed range; samples outside are
// clamped into the edge buckets (exact min/max/sum are tracked aside).
const (
	histMin = time.Microsecond
	histMax = 10 * time.Minute
)

// Hist is a log-bucketed latency histogram: bucket i covers
// (histMin·2^((i-1)/histGrowth), histMin·2^(i/histGrowth)]. It is not
// goroutine-safe; each worker owns one and they are merged afterwards.
type Hist struct {
	counts []int64
	n      int64
	sum    time.Duration
	min    time.Duration
	max    time.Duration
}

// histBuckets is the fixed bucket count for the [histMin, histMax] range.
var histBuckets = int(math.Ceil(math.Log2(float64(histMax)/float64(histMin))*histGrowth)) + 1

// NewHist returns an empty histogram.
func NewHist() *Hist {
	return &Hist{counts: make([]int64, histBuckets)}
}

// bucketOf maps a sample to its bucket index.
func bucketOf(d time.Duration) int {
	if d <= histMin {
		return 0
	}
	i := int(math.Ceil(math.Log2(float64(d)/float64(histMin)) * histGrowth))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// upperOf is the inclusive upper bound of bucket i.
func upperOf(i int) time.Duration {
	return time.Duration(float64(histMin) * math.Pow(2, float64(i)/histGrowth))
}

// satAdd adds two non-negative int64 counters, saturating at MaxInt64
// instead of wrapping. Partition-and-merge must never turn a huge count
// into a negative one, so every count accumulation goes through it.
func satAdd(a, b int64) int64 {
	if a > math.MaxInt64-b {
		return math.MaxInt64
	}
	return a + b
}

// Observe records one sample.
func (h *Hist) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(d)] = satAdd(h.counts[bucketOf(d)], 1)
	h.n = satAdd(h.n, 1)
	h.sum = time.Duration(satAdd(int64(h.sum), int64(d)))
	if h.n == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Merge folds other into h. The merge is exact: bucket counts, n, sum,
// min, and max of a merged histogram equal those of a histogram that
// observed the concatenated sample stream (saturating at int64 bounds),
// so any partition of observations merges to the same state — the
// property the distributed coordinator relies on.
func (h *Hist) Merge(other *Hist) {
	if other == nil || other.n == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] = satAdd(h.counts[i], c)
	}
	if h.n == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.n = satAdd(h.n, other.n)
	h.sum = time.Duration(satAdd(int64(h.sum), int64(other.sum)))
}

// HistState is the wire form of a histogram for distributed partial
// reports: raw bucket counts plus the exact aggregates, so a coordinator
// can reconstruct and merge worker histograms losslessly.
type HistState struct {
	Counts []int64 `json:"counts"`
	N      int64   `json:"n"`
	SumNS  int64   `json:"sum_ns"`
	MinNS  int64   `json:"min_ns"`
	MaxNS  int64   `json:"max_ns"`
}

// Export snapshots the histogram's full state.
func (h *Hist) Export() HistState {
	return HistState{
		Counts: append([]int64(nil), h.counts...),
		N:      h.n,
		SumNS:  int64(h.sum),
		MinNS:  int64(h.min),
		MaxNS:  int64(h.max),
	}
}

// ImportHist reconstructs a histogram from its wire form. A state with
// more buckets than this build understands is rejected (bucket layout is
// part of the partial-report schema).
func ImportHist(st HistState) (*Hist, error) {
	if len(st.Counts) > histBuckets {
		return nil, fmt.Errorf("loadgen: histogram state has %d buckets, this build has %d",
			len(st.Counts), histBuckets)
	}
	h := NewHist()
	copy(h.counts, st.Counts)
	h.n = st.N
	h.sum = time.Duration(st.SumNS)
	h.min = time.Duration(st.MinNS)
	h.max = time.Duration(st.MaxNS)
	return h, nil
}

// Count returns the number of samples.
func (h *Hist) Count() int64 { return h.n }

// Mean returns the exact sample mean.
func (h *Hist) Mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return h.sum / time.Duration(h.n)
}

// Max returns the exact maximum sample.
func (h *Hist) Max() time.Duration { return h.max }

// Quantile estimates the q-quantile (0 < q <= 1) from the buckets,
// reporting each bucket's upper bound (so estimates err high, never low,
// by at most one growth step). The exact max caps the top bucket.
func (h *Hist) Quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			// The last bucket holds clamped outliers; its nominal upper
			// bound can sit far below the true maximum. The exact max
			// bounds the estimate in both directions.
			if i == histBuckets-1 {
				return h.max
			}
			u := upperOf(i)
			if u > h.max {
				u = h.max
			}
			return u
		}
	}
	return h.max
}

// Buckets returns the non-empty buckets as (upper bound, count) pairs
// for the BENCH report.
func (h *Hist) Buckets() []HistBucket {
	var out []HistBucket
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		out = append(out, HistBucket{
			UpperMS: float64(upperOf(i)) / float64(time.Millisecond),
			Count:   c,
		})
	}
	return out
}

// HistBucket is one non-empty histogram bucket in the report.
type HistBucket struct {
	UpperMS float64 `json:"upper_ms"`
	Count   int64   `json:"count"`
}
