package loadgen

import (
	"bytes"
	"fmt"
	"testing"

	"specweb/internal/leakcheck"
	"specweb/internal/resilience"
	"specweb/internal/resilience/faults"
)

// TestConformanceMatrix drives the full spec × chaos × overload cube
// through the generator and asserts the cross-cutting invariants:
//
//   - fault-free cells are byte-deterministic (two runs, identical
//     deterministic JSON) with zero errors and zero shed
//   - chaos cells stay ≥ 50% available behind the retry layer
//   - overload cells expose the server's admission ledger, and with
//     uncontended slots overload control is transparent: counts match
//     the plain cell exactly
//   - no cell leaks goroutines (checked for the whole matrix)
//   - demand p99 stays bounded in every fault-free cell
func TestConformanceMatrix(t *testing.T) {
	leakcheck.Check(t)
	for _, spec := range []bool{false, true} {
		for _, chaos := range []bool{false, true} {
			for _, over := range []bool{false, true} {
				name := fmt.Sprintf("spec=%v/chaos=%v/overload=%v", spec, chaos, over)
				t.Run(name, func(t *testing.T) {
					runCell(t, spec, chaos, over)
				})
			}
		}
	}
}

// TestConformanceHighConcurrency pins the lock-free read path's determinism
// under maximum goroutine pressure: a single-worker run and a 16-worker run
// must produce the identical deterministic report. The speculation decision
// path reads an immutable snapshot and takes no locks, so no interleaving of
// concurrent readers may change a decision.
func TestConformanceHighConcurrency(t *testing.T) {
	leakcheck.Check(t)
	for _, mode := range []struct {
		name string
		over bool
	}{{"plain", false}, {"overload", true}} {
		t.Run(mode.name, func(t *testing.T) {
			serial := cellConfig(true, false, mode.over)
			serial.Workers = 1
			rep1, err := RunReport(serial, false)
			if err != nil {
				t.Fatal(err)
			}
			wide := cellConfig(true, false, mode.over)
			wide.Workers = 16
			rep16, err := RunReport(wide, false)
			if err != nil {
				t.Fatal(err)
			}
			a, _ := rep1.DeterministicJSON()
			rep16.Config.Workers = rep1.Config.Workers
			b, _ := rep16.DeterministicJSON()
			if !bytes.Equal(a, b) {
				t.Errorf("workers=1 vs workers=16 diverged:\n%s\n--- vs ---\n%s", a, b)
			}
		})
	}
}

func cellConfig(spec, chaos, over bool) Config {
	cfg := tinyConfig()
	cfg.Speculate = spec
	cfg.Overload = over
	if chaos {
		cfg.Faults = faults.Config{
			Seed:         42,
			ErrorRate:    0.05,
			Rate5xx:      0.03,
			Burst5xx:     2,
			TruncateRate: 0.02,
		}
		cfg.Retry = resilience.RetryConfig{MaxAttempts: 3}
	}
	return cfg
}

func runCell(t *testing.T, spec, chaos, over bool) {
	rep, err := RunReport(cellConfig(spec, chaos, over), false)
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Spec
	c := res.Counts

	if !spec && (c.SpecHits != 0 || c.Pushed != 0 || c.Prefetched != 0) {
		t.Errorf("speculation leaked into non-spec cell: %+v", c)
	}
	if spec && !chaos && c.SpecHits == 0 {
		t.Errorf("spec cell produced no speculative hits: %+v", c)
	}

	// Attribution: only the speculative arm carries a ledger, and a
	// finished run leaves nothing outstanding — every delivered byte is
	// accounted consumed or wasted.
	if !spec && res.Attrib != nil {
		t.Error("attribution report present in non-spec cell")
	}
	if spec {
		at := res.Attrib
		if at == nil {
			t.Fatal("spec cell missing the attribution report")
		}
		if at.Outstanding != 0 {
			t.Errorf("attribution outstanding = %d after drain, want 0", at.Outstanding)
		}
		if at.Totals.ConsumedBytes+at.Totals.WastedBytes != at.Totals.DeliveredBytes {
			t.Errorf("attribution bytes do not balance: consumed %d + wasted %d != delivered %d",
				at.Totals.ConsumedBytes, at.Totals.WastedBytes, at.Totals.DeliveredBytes)
		}
		if at.EvictedDocs != 0 {
			t.Errorf("ledger sized to the site must not evict, evicted %d", at.EvictedDocs)
		}
		if !chaos {
			if at.Totals.Consumed == 0 || at.Totals.Wasted == 0 {
				t.Errorf("spec cell attribution missing a side: consumed %d, wasted %d",
					at.Totals.Consumed, at.Totals.Wasted)
			}
			if len(at.Docs) == 0 {
				t.Error("attribution report has no per-doc rows")
			}
		}
	}

	if over {
		if res.Overload == nil {
			t.Fatal("overload cell missing the server ledger")
		}
		if res.Overload.Admission.Demand.Admitted == 0 {
			t.Errorf("admission ledger empty: %+v", res.Overload)
		}
	} else if res.Overload != nil {
		t.Error("overload ledger present without overload control")
	}

	if chaos {
		if c.Requests == 0 {
			t.Fatal("chaos cell measured nothing")
		}
		avail := 1 - float64(c.Errors)/float64(c.Requests)
		if avail < 0.5 {
			t.Errorf("availability %.2f < 0.5 under chaos (errors=%d of %d)",
				avail, c.Errors, c.Requests)
		}
		return
	}

	// Fault-free invariants.
	if c.Errors != 0 || c.WarmupErrors != 0 || c.Shed != 0 {
		t.Errorf("fault-free cell had failures: %+v", c)
	}
	if p99 := res.Timing.Latency.P99; p99 <= 0 || p99 > 5000 {
		t.Errorf("demand p99 out of bounds: %vms", p99)
	}
	// Byte-determinism: a second run with a different worker count must
	// produce the identical deterministic section.
	cfg2 := cellConfig(spec, false, over)
	cfg2.Workers = 7
	rep2, err := RunReport(cfg2, false)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := rep.DeterministicJSON()
	rep2.Config.Workers = rep.Config.Workers
	b, _ := rep2.DeterministicJSON()
	if !bytes.Equal(a, b) {
		t.Errorf("fault-free cell not byte-deterministic:\n%s\n--- vs ---\n%s", a, b)
	}

	// Uncontended overload control must be transparent: same counts as
	// the matching plain cell.
	if over {
		plain, err := RunReport(cellConfig(spec, false, false), false)
		if err != nil {
			t.Fatal(err)
		}
		if plain.Spec.Counts != c {
			t.Errorf("overload control changed an uncontended run:\n%+v\n%+v",
				plain.Spec.Counts, c)
		}
	}
}
