package loadgen

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"specweb/internal/checkpoint"
	"specweb/internal/httpspec"
	"specweb/internal/stats"
	"specweb/internal/trace"
)

// The kill/restart chaos harness: one arm's measurement phase is split
// by a simulated server crash — the server object is dropped on the
// floor with no shutdown, exactly what SIGKILL leaves behind — and a
// fresh stack is built in its place. What the fresh stack knows depends
// on the mode: a warm restart recovers the checkpointed estimate, a
// cold restart starts from nothing. Per-phase interception counters
// quantify what the crash cost.
//
// Everything stays on the virtual clock frozen at the warmup boundary,
// so no refresh fires mid-measurement and each arm's counters are
// byte-deterministic: the warm arm restores the exact frozen model an
// uninterrupted run would have kept using.

// Restart modes.
const (
	// RestartNone splits the measurement for per-phase accounting but
	// never crashes — the uninterrupted control arm.
	RestartNone = "none"
	// RestartWarm crashes, then recovers from the newest readable
	// checkpoint frame.
	RestartWarm = "warm"
	// RestartCold crashes and deliberately skips recovery.
	RestartCold = "cold"
)

// RestartConfig parameterizes the crash.
type RestartConfig struct {
	// Mode is RestartNone, RestartWarm or RestartCold.
	Mode string `json:"mode"`
	// CrashFraction is the share of the measurement phase served before
	// the crash (default 0.5).
	CrashFraction float64 `json:"crash_fraction"`
	// CorruptNewest flips a byte in the newest checkpoint frame after
	// the crash, so warm recovery must fall back to the last-good frame.
	CorruptNewest bool `json:"corrupt_newest,omitempty"`
	// StateDir is the checkpoint directory spanning the crash; empty
	// means a private temp dir removed when the run ends.
	StateDir string `json:"-"`
}

// validate normalizes and rejects configurations the harness cannot
// keep deterministic.
func (rc *RestartConfig) validate(cfg Config) (*RestartConfig, error) {
	out := *rc
	switch out.Mode {
	case RestartNone, RestartWarm, RestartCold:
	default:
		return nil, fmt.Errorf("loadgen: restart mode %q (want %s, %s or %s)",
			out.Mode, RestartNone, RestartWarm, RestartCold)
	}
	if out.CrashFraction <= 0 || out.CrashFraction >= 1 {
		out.CrashFraction = 0.5
	}
	if out.CorruptNewest && out.Mode != RestartWarm {
		return nil, fmt.Errorf("loadgen: corrupt_newest requires warm mode")
	}
	if cfg.BaseURL != "" {
		return nil, fmt.Errorf("loadgen: restart harness needs the in-process stack")
	}
	if cfg.OpenLoop && cfg.Rate > 0 {
		return nil, fmt.Errorf("loadgen: restart harness is closed-loop only")
	}
	return &out, nil
}

// RestartInfo is the per-phase ledger of one restart arm.
type RestartInfo struct {
	Mode          string      `json:"mode"`
	CrashFraction float64     `json:"crash_fraction"`
	CrashIndex    int         `json:"crash_index"` // measurement requests before the crash
	Phase1        PhaseCounts `json:"phase1"`
	Phase2        PhaseCounts `json:"phase2"`
}

// PhaseCounts are one phase's client-side totals. Interception is
// SpecHits/Requests — the fraction of demand served from speculative
// deliveries, the recovery metric the harness compares across arms.
type PhaseCounts struct {
	Requests     int64   `json:"requests"`
	CacheHits    int64   `json:"cache_hits"`
	SpecHits     int64   `json:"spec_hits"`
	Errors       int64   `json:"errors"`
	Interception float64 `json:"interception"`
}

// switchHandler is the crash swap point: clients keep one transport for
// the whole run while the handler behind it is atomically replaced.
type switchHandler struct {
	h atomic.Pointer[http.Handler]
}

func newSwitchHandler(h http.Handler) *switchHandler {
	s := &switchHandler{}
	s.set(h)
	return s
}

func (s *switchHandler) set(h http.Handler) { s.h.Store(&h) }

func (s *switchHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	(*s.h.Load()).ServeHTTP(w, r)
}

// runRestart drives the split measurement: phase 1 up to the crash
// index, the crash/recovery barrier, then phase 2. All phase-1 workers
// have joined before the swap, so no request is ever in flight across
// the crash — demand traffic is never dropped, which the invariant
// checks then assert as zero phase errors.
func (r *run) runRestart(tr *trace.Trace, warmN, n int, rst *RestartConfig,
	ck *checkpoint.Store, swap *switchHandler, rebuild func() (*httpspec.Server, error),
	freezeAt time.Time, root *stats.RNG) (*RestartInfo, []*workerResult, error) {

	crashIdx := warmN + int(rst.CrashFraction*float64(n-warmN))
	q1 := make([][]int, r.cfg.Workers)
	q2 := make([][]int, r.cfg.Workers)
	for i := warmN; i < n; i++ {
		w := workerOf(tr.Requests[i].Client, r.cfg.Workers)
		if i < crashIdx {
			q1[w] = append(q1[w], i)
		} else {
			q2[w] = append(q2[w], i)
		}
	}

	res1 := r.closedPhase(tr, q1, root, "p1")
	for _, id := range r.order {
		cl := r.clients[id]
		cl.crash = cl.c.Stats()
	}

	if rst.Mode != RestartNone {
		// Crash: the old server is abandoned, not shut down. A real
		// SIGKILL leaves exactly this — no drain, no final checkpoint.
		if rst.CorruptNewest {
			// A second frame of the same frozen state, so corrupting the
			// newest still leaves a last-good frame to fall back to.
			if err := r.srv.Engine().CheckpointNow(freezeAt); err != nil {
				return nil, nil, err
			}
			if err := corruptNewestFrame(rst.StateDir); err != nil {
				return nil, nil, err
			}
		}
		srvB, err := rebuild()
		if err != nil {
			return nil, nil, err
		}
		switch rst.Mode {
		case RestartWarm:
			snap, _, err := ck.Load()
			if err != nil {
				return nil, nil, err
			}
			if snap != nil {
				if err := srvB.Engine().WarmStart(snap, freezeAt); err != nil {
					ck.NoteColdStart()
				}
			}
		case RestartCold:
			ck.NoteColdStart() // recovery deliberately skipped
		}
		swap.set(srvB)
	}

	res2 := r.closedPhase(tr, q2, root, "p2")

	ri := &RestartInfo{
		Mode:          rst.Mode,
		CrashFraction: rst.CrashFraction,
		CrashIndex:    crashIdx - warmN,
	}
	for _, id := range r.order {
		cl := r.clients[id]
		ws, cs, fs := cl.warmup, cl.crash, cl.c.Stats()
		ri.Phase1.Requests += cs.Fetches - ws.Fetches
		ri.Phase1.CacheHits += cs.CacheHits - ws.CacheHits
		ri.Phase1.SpecHits += cs.SpecHits - ws.SpecHits
		ri.Phase2.Requests += fs.Fetches - cs.Fetches
		ri.Phase2.CacheHits += fs.CacheHits - cs.CacheHits
		ri.Phase2.SpecHits += fs.SpecHits - cs.SpecHits
	}
	for _, wr := range res1 {
		ri.Phase1.Errors += wr.errors
	}
	for _, wr := range res2 {
		ri.Phase2.Errors += wr.errors
	}
	if ri.Phase1.Requests > 0 {
		ri.Phase1.Interception = float64(ri.Phase1.SpecHits) / float64(ri.Phase1.Requests)
	}
	if ri.Phase2.Requests > 0 {
		ri.Phase2.Interception = float64(ri.Phase2.SpecHits) / float64(ri.Phase2.Requests)
	}
	return ri, append(res1, res2...), nil
}

// closedPhase runs one phase's queues to completion on worker
// goroutines and returns their ledgers.
func (r *run) closedPhase(tr *trace.Trace, queues [][]int, root *stats.RNG, tag string) []*workerResult {
	results := make([]*workerResult, r.cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < r.cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = r.closedWorker(tr, queues[w],
				root.Split(fmt.Sprintf("worker-%d-%s", w, tag)))
		}(w)
	}
	wg.Wait()
	return results
}

// corruptNewestFrame flips one payload byte in the newest checkpoint
// frame, simulating torn or rotted storage.
func corruptNewestFrame(dir string) error {
	frames, err := filepath.Glob(filepath.Join(dir, "ckpt-*.spw"))
	if err != nil {
		return err
	}
	if len(frames) == 0 {
		return fmt.Errorf("loadgen: no checkpoint frames in %s to corrupt", dir)
	}
	sort.Strings(frames)
	path := frames[len(frames)-1]
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	data[len(data)/2] ^= 0x40
	return os.WriteFile(path, data, 0o644)
}

// RestartSchema versions the BENCH-restart.json layout.
const RestartSchema = "specbench-restart/1"

// RestartReport is the BENCH-restart.json document: the same workload
// driven through four arms — uninterrupted control, warm restart, cold
// restart, and warm restart forced through the corrupt-frame fallback
// ladder. Outside the per-arm Timing sections everything is
// deterministic for a given seed.
type RestartReport struct {
	Schema          string       `json:"schema"`
	Config          ConfigInfo   `json:"config"`
	Workload        WorkloadInfo `json:"workload"`
	Uninterrupted   *Result      `json:"uninterrupted"`
	Warm            *Result      `json:"warm"`
	Cold            *Result      `json:"cold"`
	CorruptFallback *Result      `json:"corrupt_fallback"`
}

// JSON marshals the full report, indented.
func (r *RestartReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// RunRestartSuite executes the four restart arms over the identical
// workload and assembles the report. A CrashFraction preset on
// cfg.Restart applies to every arm; the mode there is ignored.
func RunRestartSuite(cfg Config) (*RestartReport, error) {
	cfg.Reps = 1 // the suite gates counters, not wall-clock timing
	var frac float64
	if cfg.Restart != nil {
		frac = cfg.Restart.CrashFraction
	}
	arm := func(rc RestartConfig) (*Result, *WorkloadInfo, ConfigInfo, error) {
		c := cfg
		rc.CrashFraction = frac
		c.Restart = &rc
		return Run(c)
	}
	un, winfo, cinfo, err := arm(RestartConfig{Mode: RestartNone})
	if err != nil {
		return nil, err
	}
	warm, _, _, err := arm(RestartConfig{Mode: RestartWarm})
	if err != nil {
		return nil, err
	}
	cold, _, _, err := arm(RestartConfig{Mode: RestartCold})
	if err != nil {
		return nil, err
	}
	corrupt, _, _, err := arm(RestartConfig{Mode: RestartWarm, CorruptNewest: true})
	if err != nil {
		return nil, err
	}
	cinfo.Restart = nil // per-arm configs differ only in the restart block
	return &RestartReport{
		Schema:          RestartSchema,
		Config:          cinfo,
		Workload:        *winfo,
		Uninterrupted:   un,
		Warm:            warm,
		Cold:            cold,
		CorruptFallback: corrupt,
	}, nil
}

// restartRecoverySlack is how far (absolute interception) a recovered
// arm's post-crash phase may trail the uninterrupted control.
const restartRecoverySlack = 0.05

// CheckRestartInvariants enforces the durability acceptance criteria on
// a suite report, returning one message per violation:
//
//   - no arm drops demand traffic (zero errors in both phases);
//   - warm recovery restores interception to within 5% (absolute) of
//     the uninterrupted run, immediately — phase 2 starts at the crash;
//   - warm strictly beats cold after the crash;
//   - the corrupt arm recovered warm through the last-good frame, with
//     the corruption observed and skipped.
func CheckRestartInvariants(rep *RestartReport) []string {
	var v []string
	fail := func(format string, args ...any) {
		v = append(v, fmt.Sprintf(format, args...))
	}
	arms := []struct {
		name string
		res  *Result
	}{
		{"uninterrupted", rep.Uninterrupted},
		{"warm", rep.Warm},
		{"cold", rep.Cold},
		{"corrupt_fallback", rep.CorruptFallback},
	}
	for _, a := range arms {
		if a.res == nil || a.res.Restart == nil {
			fail("%s: arm or restart section missing", a.name)
			return v
		}
		ri := a.res.Restart
		if ri.Phase1.Errors != 0 || ri.Phase2.Errors != 0 {
			fail("%s: dropped demand requests (phase1 %d, phase2 %d errors)",
				a.name, ri.Phase1.Errors, ri.Phase2.Errors)
		}
		if ri.Phase1.Requests == 0 || ri.Phase2.Requests == 0 {
			fail("%s: empty phase (%d/%d requests)", a.name,
				ri.Phase1.Requests, ri.Phase2.Requests)
		}
	}
	if len(v) > 0 {
		return v
	}

	un2 := rep.Uninterrupted.Restart.Phase2.Interception
	warm2 := rep.Warm.Restart.Phase2.Interception
	cold2 := rep.Cold.Restart.Phase2.Interception
	corr2 := rep.CorruptFallback.Restart.Phase2.Interception
	if warm2 < un2-restartRecoverySlack {
		fail("warm recovery interception %.4f trails uninterrupted %.4f by more than %.2f",
			warm2, un2, restartRecoverySlack)
	}
	if corr2 < un2-restartRecoverySlack {
		fail("corrupt-fallback interception %.4f trails uninterrupted %.4f by more than %.2f",
			corr2, un2, restartRecoverySlack)
	}
	if warm2 <= cold2 {
		fail("warm restart interception %.4f does not beat cold %.4f", warm2, cold2)
	}

	ck := func(name string, res *Result) *checkpoint.Counters {
		if res.Checkpoint == nil {
			fail("%s: checkpoint counters missing", name)
			return nil
		}
		return res.Checkpoint
	}
	if c := ck("warm", rep.Warm); c != nil {
		if c.Loaded != 1 || c.CorruptSkipped != 0 || c.ColdStarts != 0 {
			fail("warm arm counters: %+v (want exactly one clean load)", *c)
		}
	}
	if c := ck("cold", rep.Cold); c != nil {
		if c.Loaded != 0 || c.ColdStarts != 1 {
			fail("cold arm counters: %+v (want no load, one cold start)", *c)
		}
	}
	if c := ck("corrupt_fallback", rep.CorruptFallback); c != nil {
		if c.Loaded != 1 || c.CorruptSkipped < 1 || c.ColdStarts != 0 {
			fail("corrupt arm counters: %+v (want corrupt skipped, then last-good loaded)", *c)
		}
	}
	if rep.Uninterrupted.Checkpoint != nil {
		fail("uninterrupted arm must not carry checkpoint counters")
	}
	return v
}

// CompareRestart gates a current suite report against a committed
// baseline: deterministic per-phase counts within tolerancePct,
// checkpoint counters exactly equal.
func CompareRestart(baseline, current *RestartReport, tolerancePct float64) []string {
	if tolerancePct <= 0 {
		tolerancePct = 10
	}
	tol := tolerancePct / 100
	var v []string
	fail := func(format string, args ...any) {
		v = append(v, fmt.Sprintf(format, args...))
	}
	if baseline.Schema != current.Schema {
		fail("schema changed: %s -> %s", baseline.Schema, current.Schema)
	}
	drift := func(name string, base, cur float64) {
		if base == 0 && cur == 0 {
			return
		}
		den := base
		if den < 0 {
			den = -den
		}
		if den == 0 {
			den = 1
		}
		d := (cur - base) / den
		if d < 0 {
			d = -d
		}
		if d > tol {
			fail("%s drifted %.1f%% (baseline %.6g, current %.6g, tolerance %.0f%%)",
				name, d*100, base, cur, tolerancePct)
		}
	}
	arm := func(name string, base, cur *Result) {
		if base == nil || cur == nil || base.Restart == nil || cur.Restart == nil {
			fail("%s: arm missing in one report", name)
			return
		}
		for _, ph := range []struct {
			tag  string
			b, c PhaseCounts
		}{
			{"phase1", base.Restart.Phase1, cur.Restart.Phase1},
			{"phase2", base.Restart.Phase2, cur.Restart.Phase2},
		} {
			drift(name+"."+ph.tag+".requests", float64(ph.b.Requests), float64(ph.c.Requests))
			drift(name+"."+ph.tag+".spec_hits", float64(ph.b.SpecHits), float64(ph.c.SpecHits))
			drift(name+"."+ph.tag+".interception", ph.b.Interception, ph.c.Interception)
			if ph.b.Errors == 0 && ph.c.Errors > 0 {
				fail("%s.%s.errors: baseline had none, current has %d", name, ph.tag, ph.c.Errors)
			}
		}
		if b, c := base.Checkpoint, cur.Checkpoint; (b == nil) != (c == nil) {
			fail("%s.checkpoint: present in only one report", name)
		} else if b != nil && *b != *c {
			fail("%s.checkpoint counters changed: %+v -> %+v", name, *b, *c)
		}
	}
	arm("uninterrupted", baseline.Uninterrupted, current.Uninterrupted)
	arm("warm", baseline.Warm, current.Warm)
	arm("cold", baseline.Cold, current.Cold)
	arm("corrupt_fallback", baseline.CorruptFallback, current.CorruptFallback)
	return v
}
