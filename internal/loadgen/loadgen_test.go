package loadgen

import (
	"bytes"
	"testing"
	"time"

	"specweb/internal/experiments"
	"specweb/internal/httpspec"
	"specweb/internal/leakcheck"
	"specweb/internal/netsim"
	"specweb/internal/webgraph"
)

// tinyConfig is a sub-second workload: a 20-page site over two days.
func tinyConfig() Config {
	return Config{
		Workload: experiments.WorkloadConfig{
			Profile:        webgraph.TinySite(),
			Net:            netsim.TinyConfig(),
			Days:           2,
			SessionsPerDay: 30,
			Seed:           7,
		},
		Speculate: true,
		Mode:      httpspec.ModePush,
		Workers:   3,
	}
}

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, _, _, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunBasics(t *testing.T) {
	leakcheck.Check(t)
	res, winfo, cinfo, err := Run(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if winfo.Measured <= 0 || winfo.Warmup <= 0 {
		t.Fatalf("bad phase split: %+v", winfo)
	}
	if cinfo.Mode != "push" || cinfo.Workers != 3 {
		t.Fatalf("config echo wrong: %+v", cinfo)
	}
	c := res.Counts
	if c.Requests != int64(winfo.Measured) {
		t.Errorf("measured %d requests, trace says %d", c.Requests, winfo.Measured)
	}
	if c.Errors != 0 || c.WarmupErrors != 0 || c.Shed != 0 {
		t.Errorf("fault-free run had errors: %+v", c)
	}
	if c.SpecHits == 0 || c.Pushed == 0 {
		t.Errorf("speculative arm produced no speculation: %+v", c)
	}
	if c.BaselineBytes != c.MissBytes+c.SpecHitBytes {
		t.Error("baseline bytes identity broken")
	}
	if res.Ratios.ServerLoad >= 1 || res.Ratios.ByteMissRate >= 1 {
		t.Errorf("speculation did not help: %+v", res.Ratios)
	}
	if res.Ratios.Bandwidth < 1 {
		t.Errorf("speculation cannot reduce raw bandwidth: %+v", res.Ratios)
	}
	tm := res.Timing
	if tm == nil || tm.Throughput <= 0 || tm.Latency.P99 <= 0 || len(tm.Histogram) == 0 {
		t.Fatalf("timing section incomplete: %+v", tm)
	}
	if tm.ServiceTime >= 1 {
		t.Errorf("service time ratio %v, want < 1 with spec hits", tm.ServiceTime)
	}
}

// TestRunDeterministicAcrossWorkers is the heart of the bench design:
// the deterministic section may not depend on concurrency. Different
// worker counts partition clients differently and interleave requests
// arbitrarily, yet every counter must come out identical because the
// speculation model is frozen at the warmup boundary.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	leakcheck.Check(t)
	var first []byte
	for _, workers := range []int{1, 3, 8} {
		cfg := tinyConfig()
		cfg.Workers = workers
		rep, err := RunReport(cfg, false)
		if err != nil {
			t.Fatal(err)
		}
		rep.Config.Workers = 0 // the echo legitimately differs
		b, err := rep.DeterministicJSON()
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = b
		} else if !bytes.Equal(first, b) {
			t.Fatalf("workers=%d changed the deterministic section:\n%s\n--- vs ---\n%s",
				workers, first, b)
		}
	}
}

func TestRunDeterministicAcrossRepeats(t *testing.T) {
	leakcheck.Check(t)
	a, err := RunReport(tinyConfig(), true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunReport(tinyConfig(), true)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := a.DeterministicJSON()
	bj, _ := b.DeterministicJSON()
	if !bytes.Equal(aj, bj) {
		t.Fatalf("repeat run drifted:\n%s\n--- vs ---\n%s", aj, bj)
	}
}

// Open-loop pacing changes timing, not outcomes: with the engine frozen
// the per-client request sequences decide every counter.
func TestOpenLoopMatchesClosedLoopCounts(t *testing.T) {
	leakcheck.Check(t)
	closed := mustRun(t, tinyConfig())
	open := tinyConfig()
	open.OpenLoop = true
	open.Rate = 20000
	open.Burst = 8
	openRes := mustRun(t, open)
	if closed.Counts != openRes.Counts {
		t.Fatalf("open-loop counts differ from closed-loop:\n%+v\n%+v",
			closed.Counts, openRes.Counts)
	}
}

func TestBaselineArmHasNoSpeculation(t *testing.T) {
	leakcheck.Check(t)
	cfg := tinyConfig()
	cfg.Speculate = false
	res := mustRun(t, cfg)
	c := res.Counts
	if c.Pushed != 0 || c.Prefetched != 0 || c.SpecHits != 0 || c.SpecHitBytes != 0 {
		t.Fatalf("baseline arm speculated: %+v", c)
	}
	if r := res.Ratios; r.Bandwidth != 1 || r.ServerLoad != 1 || r.ByteMissRate != 1 {
		t.Fatalf("baseline arm ratios not unity: %+v", r)
	}
}

func TestRunReportTwoArms(t *testing.T) {
	leakcheck.Check(t)
	rep, err := RunReport(tinyConfig(), true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != ReportSchema || rep.Spec == nil || rep.Baseline == nil {
		t.Fatalf("incomplete report: %+v", rep)
	}
	if rep.Relative == nil || rep.Relative.ThroughputRatio <= 0 || rep.Relative.P99Ratio <= 0 {
		t.Fatalf("missing relative section: %+v", rep.Relative)
	}
	if rep.Baseline.Counts.Requests != rep.Spec.Counts.Requests {
		t.Error("arms measured different request counts")
	}
	// A fresh identical run must pass its own gate.
	if v := Compare(rep, rep, CompareOptions{}); len(v) != 0 {
		t.Fatalf("self-comparison failed: %v", v)
	}
}

func TestThinkTimeSlowsClosedLoop(t *testing.T) {
	leakcheck.Check(t)
	cfg := tinyConfig()
	cfg.Workload.SessionsPerDay = 5 // keep the request count tiny
	fast := mustRun(t, cfg)
	cfg.Think = 2 * time.Millisecond
	cfg.ThinkJitter = time.Millisecond
	slow := mustRun(t, cfg)
	if fast.Counts != slow.Counts {
		t.Error("think time changed deterministic counts")
	}
	if slow.Timing.Throughput >= fast.Timing.Throughput {
		t.Errorf("think time did not lower throughput: %v >= %v",
			slow.Timing.Throughput, fast.Timing.Throughput)
	}
}
