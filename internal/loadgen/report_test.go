package loadgen

import (
	"encoding/json"
	"strings"
	"testing"
)

func sampleReport() *Report {
	return &Report{
		Schema: ReportSchema,
		Config: ConfigInfo{Profile: "tiny", Seed: 7, Workers: 4, Mode: "hybrid"},
		Workload: WorkloadInfo{
			Pages: 20, Clients: 10, Trace: 300, Warmup: 90, Measured: 210,
		},
		Spec: &Result{
			Counts: Counts{Requests: 210, CacheHits: 60, SpecHits: 30,
				BytesIn: 1 << 20, MissBytes: 700 << 10, SpecHitBytes: 200 << 10,
				BaselineBytes: 900 << 10},
			Ratios: Ratios{Bandwidth: 1.16, ServerLoad: 0.85, ByteMissRate: 0.78},
			Timing: &Timing{DurationSeconds: 0.5, Throughput: 420,
				Latency: Quantiles{P50: 0.2, P99: 1.5}, ServiceTime: 0.8},
		},
		Baseline: &Result{
			Counts: Counts{Requests: 210, CacheHits: 55},
			Ratios: Ratios{Bandwidth: 1, ServerLoad: 1, ByteMissRate: 1},
			Timing: &Timing{DurationSeconds: 0.6, Throughput: 350,
				Latency: Quantiles{P50: 0.3, P99: 2.0}},
		},
		Relative: &Relative{P99Ratio: 0.75, ThroughputRatio: 1.2},
	}
}

func TestDeterministicJSONStripsTiming(t *testing.T) {
	b, err := sampleReport().DeterministicJSON()
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, banned := range []string{"timing", "throughput_rps", "p99_ratio", "duration"} {
		if strings.Contains(s, banned) {
			t.Errorf("deterministic JSON contains wall-clock field %q", banned)
		}
	}
	if !strings.Contains(s, "\"requests\": 210") || !strings.Contains(s, "\"bandwidth\": 1.16") {
		t.Error("deterministic JSON lost counts or ratios")
	}
	// Stripping must not mutate the original.
	if sampleReport().Spec.Timing == nil {
		t.Fatal("sample construction broken")
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		t.Fatalf("deterministic JSON does not round-trip: %v", err)
	}
}

func TestCompareIdenticalPasses(t *testing.T) {
	if v := Compare(sampleReport(), sampleReport(), CompareOptions{}); len(v) != 0 {
		t.Fatalf("identical reports flagged: %v", v)
	}
}

func TestCompareCatchesCountDrift(t *testing.T) {
	cur := sampleReport()
	cur.Spec.Counts.Requests = 260 // +24%
	v := Compare(sampleReport(), cur, CompareOptions{})
	if len(v) == 0 || !strings.Contains(strings.Join(v, "\n"), "requests") {
		t.Fatalf("24%% request drift not flagged: %v", v)
	}
}

func TestCompareCatchesNewErrors(t *testing.T) {
	cur := sampleReport()
	cur.Spec.Counts.Errors = 3
	v := Compare(sampleReport(), cur, CompareOptions{})
	if len(v) == 0 || !strings.Contains(strings.Join(v, "\n"), "errors") {
		t.Fatalf("new errors not flagged: %v", v)
	}
}

func TestCompareCatchesRatioDrift(t *testing.T) {
	cur := sampleReport()
	cur.Spec.Ratios.ServerLoad = 1.05 // was 0.85: speculation stopped helping
	v := Compare(sampleReport(), cur, CompareOptions{})
	if len(v) == 0 || !strings.Contains(strings.Join(v, "\n"), "server_load") {
		t.Fatalf("server_load drift not flagged: %v", v)
	}
}

func TestCompareCatchesRelativeP99Regression(t *testing.T) {
	cur := sampleReport()
	cur.Relative.P99Ratio = 2.5
	cur.Spec.Timing.Latency.P99 = 5.0 // 3ms above the baseline arm: beyond slack
	v := Compare(sampleReport(), cur, CompareOptions{})
	if len(v) == 0 || !strings.Contains(strings.Join(v, "\n"), "p99_ratio") {
		t.Fatalf("relative p99 regression not flagged: %v", v)
	}
}

func TestCompareLatencySlackForgivesMicroNoise(t *testing.T) {
	cur := sampleReport()
	// Ratio doubled but the absolute gap is 0.3ms — inside the slack.
	cur.Relative.P99Ratio = 1.6
	cur.Spec.Timing.Latency.P99 = 2.3
	if v := Compare(sampleReport(), cur, CompareOptions{}); len(v) != 0 {
		t.Fatalf("sub-slack latency noise flagged: %v", v)
	}
}

func TestCompareCatchesThroughputRatioRegression(t *testing.T) {
	cur := sampleReport()
	cur.Relative.ThroughputRatio = 0.9 // was 1.2
	v := Compare(sampleReport(), cur, CompareOptions{})
	if len(v) == 0 || !strings.Contains(strings.Join(v, "\n"), "throughput_ratio") {
		t.Fatalf("throughput ratio regression not flagged: %v", v)
	}
}

func TestCompareAbsoluteMode(t *testing.T) {
	cur := sampleReport()
	cur.Spec.Timing.Throughput = 100 // -76%
	if v := Compare(sampleReport(), cur, CompareOptions{}); len(v) != 0 {
		t.Fatalf("absolute throughput gated without Absolute: %v", v)
	}
	v := Compare(sampleReport(), cur, CompareOptions{Absolute: true})
	if len(v) == 0 || !strings.Contains(strings.Join(v, "\n"), "throughput_rps") {
		t.Fatalf("absolute throughput regression not flagged: %v", v)
	}
}
