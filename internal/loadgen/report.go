package loadgen

import (
	"encoding/json"
	"fmt"
	"math"

	"specweb/internal/attrib"
	"specweb/internal/checkpoint"
	"specweb/internal/httpspec"
	"specweb/internal/markov"
)

// ReportSchema versions the BENCH.json layout.
const ReportSchema = "specbench/1"

// Report is the BENCH.json document: one or two arms (speculative and,
// when requested, a no-speculation baseline run of the same workload)
// plus the timing-derived comparison between them. Everything outside
// the Timing sections and Relative block is deterministic for a given
// config and seed — byte-identical across runs, machines and worker
// counts — so regression gates can hold those fields to zero drift.
type Report struct {
	Schema   string       `json:"schema"`
	Config   ConfigInfo   `json:"config"`
	Workload WorkloadInfo `json:"workload"`
	Spec     *Result      `json:"spec"`
	Baseline *Result      `json:"baseline,omitempty"`
	// Relative compares the two arms' wall-clock metrics; ratios of
	// same-process measurements are far more machine-portable than the
	// raw numbers.
	Relative *Relative `json:"relative,omitempty"`
}

// ConfigInfo echoes the generator configuration into the report.
type ConfigInfo struct {
	Profile            string  `json:"profile"`
	Days               int     `json:"days"`
	SessionsPerDay     float64 `json:"sessions_per_day"`
	Seed               int64   `json:"seed"`
	Workers            int     `json:"workers"`
	WarmupFraction     float64 `json:"warmup_fraction"`
	Mode               string  `json:"mode"`
	MaxPush            int     `json:"max_push"`
	Cooperative        bool    `json:"cooperative"`
	PrefetchThreshold  float64 `json:"prefetch_threshold"`
	SessionGapRequests int     `json:"session_gap_requests"`
	Reps               int     `json:"reps,omitempty"`
	OpenLoop           bool    `json:"open_loop"`
	Rate               float64 `json:"rate,omitempty"`
	Burst              int     `json:"burst,omitempty"`
	ThinkMS            float64 `json:"think_ms,omitempty"`
	RealClock          bool    `json:"real_clock,omitempty"`
	Network            bool    `json:"network,omitempty"`
	Chaos              bool    `json:"chaos,omitempty"`
	Overload           bool    `json:"overload,omitempty"`
	Scenario           string  `json:"scenario,omitempty"`
	Estguard           bool    `json:"estguard,omitempty"`
	// MaxRows and RowTopK echo the bounded-estimator caps; absent (0)
	// for exact-estimator runs, so existing reports stay byte-identical.
	MaxRows int `json:"max_rows,omitempty"`
	RowTopK int `json:"row_topk,omitempty"`
	// Restart echoes the kill/restart harness configuration; absent for
	// ordinary runs, so existing reports stay byte-identical.
	Restart *RestartConfig `json:"restart,omitempty"`
	// Stream marks a run that drove the workload from per-client seeded
	// cursors instead of a materialized trace; absent (false) for
	// materialized runs, so existing reports stay byte-identical.
	Stream bool `json:"stream,omitempty"`
}

// WorkloadInfo describes the generated workload.
type WorkloadInfo struct {
	Pages    int   `json:"pages"`
	Clients  int   `json:"clients"`
	Trace    int   `json:"trace_requests"`
	Warmup   int   `json:"warmup_requests"`
	Measured int   `json:"measured_requests"`
	Bytes    int64 `json:"site_bytes"`
}

// Result is one arm's outcome: deterministic counters and ratios plus
// the wall-clock Timing section.
type Result struct {
	Counts Counts `json:"counts"`
	Ratios Ratios `json:"ratios"`
	// Overload is the server's admission/governor ledger, present when
	// the run installed overload control on the in-process server.
	Overload *httpspec.ServerOverloadStats `json:"overload,omitempty"`
	// Attrib is the speculation attribution report for the arm: consumed
	// vs wasted speculative bytes by delivery class, with top-K per-doc
	// rows. Outstanding deliveries are resolved before the report is
	// taken, and the ledger is sized to the whole site, so the section is
	// deterministic — part of the byte-identical fingerprint.
	Attrib *attrib.Report `json:"attrib,omitempty"`
	// Estguard summarizes the estimator-hardening guard's decisions,
	// present when the arm ran with Config.Estguard. Every field is a
	// function of the recorded trace and the seed, so the section is part
	// of the byte-identical fingerprint.
	Estguard *EstguardInfo `json:"estguard,omitempty"`
	// Estimator is the bounded estimator's footprint and eviction ledger
	// at the measurement freeze, present when the arm ran with
	// MaxRows/RowTopK set. Deterministic — every field is a function of
	// the warmup trace — and omitted for exact-estimator runs so those
	// reports stay byte-identical.
	Estimator *markov.EstimatorStats `json:"estimator,omitempty"`
	// Checkpoint carries the durable-state counters when the arm ran
	// with checkpointing (the restart harness); deterministic, and
	// omitted — byte-identically — when checkpointing is off.
	Checkpoint *checkpoint.Counters `json:"checkpoint,omitempty"`
	// Restart is the per-phase crash ledger of a restart-harness arm.
	Restart *RestartInfo `json:"restart,omitempty"`
	Timing  *Timing      `json:"timing,omitempty"`
}

// EstguardInfo is the guard's deterministic decision ledger for one arm.
type EstguardInfo struct {
	QuarantinedClients  int64   `json:"quarantined_clients"`
	QuarantinedRequests int64   `json:"quarantined_requests"`
	Promotions          int64   `json:"promotions,omitempty"`
	Demotions           int64   `json:"demotions,omitempty"`
	Refreshes           int64   `json:"refreshes"`
	EarlyRefreshes      int64   `json:"early_refreshes,omitempty"`
	SnapshotsRejected   int64   `json:"snapshots_rejected,omitempty"`
	ForcedAccepts       int64   `json:"forced_accepts,omitempty"`
	DriftScore          float64 `json:"drift_score,omitempty"`
}

// Counts are the measurement-phase totals summed over all clients
// (warmup activity is subtracted out). All are deterministic under the
// virtual clock.
type Counts struct {
	Requests      int64 `json:"requests"`
	WarmupErrors  int64 `json:"warmup_errors"`
	CacheHits     int64 `json:"cache_hits"`
	SpecHits      int64 `json:"spec_hits"`
	Pushed        int64 `json:"pushed"`
	Prefetched    int64 `json:"prefetched"`
	Errors        int64 `json:"errors"`
	Shed          int64 `json:"shed"`
	Retries       int64 `json:"retries"`
	StaleServes   int64 `json:"stale_serves"`
	BytesIn       int64 `json:"bytes_in"`
	DemandBytes   int64 `json:"demand_bytes"`
	MissBytes     int64 `json:"miss_bytes"`
	SpecHitBytes  int64 `json:"spec_hit_bytes"`
	BaselineBytes int64 `json:"baseline_bytes"`
}

// Ratios are the count-based paper ratios (Figs. 5–6): speculative
// service over the non-speculative baseline the same session caches
// would have seen. The fourth paper ratio — service time — is wall-clock
// by nature and lives in Timing.ServiceTime.
type Ratios struct {
	Bandwidth    float64 `json:"bandwidth"`
	ServerLoad   float64 `json:"server_load"`
	ByteMissRate float64 `json:"byte_miss_rate"`
}

// Timing is the wall-clock section: excluded from the deterministic
// fingerprint, compared only through tolerance gates.
type Timing struct {
	DurationSeconds float64      `json:"duration_seconds"`
	Throughput      float64      `json:"throughput_rps"`
	Latency         Quantiles    `json:"latency_ms"`
	ServiceTime     float64      `json:"service_time"`
	Histogram       []HistBucket `json:"histogram,omitempty"`
	// Memory records the process heap at report time. It lives inside
	// Timing — machine- and GC-schedule-dependent — so Deterministic()
	// strips it and Compare ignores it.
	Memory *MemoryInfo `json:"memory,omitempty"`
}

// MemoryInfo is a runtime.ReadMemStats snapshot taken when the arm's
// report is assembled: live heap bytes and total bytes obtained from the
// OS. The streaming memory gate reads these to prove the cursor path's
// O(workers + sessions) footprint against the materialized trace.
type MemoryInfo struct {
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	SysBytes       uint64 `json:"sys_bytes"`
}

// Quantiles are latency percentiles in milliseconds.
type Quantiles struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

// Relative compares the speculative arm to the baseline arm run in the
// same process: P99Ratio < 1 means speculation improved tail latency,
// ThroughputRatio > 1 means it improved throughput.
type Relative struct {
	P99Ratio        float64 `json:"p99_ratio"`
	ThroughputRatio float64 `json:"throughput_ratio"`
}

// quantiles extracts the report percentiles from a histogram.
func quantiles(h *Hist) Quantiles {
	ms := func(d float64) float64 { return d / 1e6 }
	return Quantiles{
		P50:  ms(float64(h.Quantile(0.50))),
		P90:  ms(float64(h.Quantile(0.90))),
		P99:  ms(float64(h.Quantile(0.99))),
		P999: ms(float64(h.Quantile(0.999))),
		Mean: ms(float64(h.Mean())),
		Max:  ms(float64(h.Max())),
	}
}

// Deterministic returns the report with every wall-clock field removed:
// the portion that must be byte-identical across runs of one config.
func (r *Report) Deterministic() *Report {
	out := *r
	out.Relative = nil
	strip := func(res *Result) *Result {
		if res == nil {
			return nil
		}
		c := *res
		c.Timing = nil
		return &c
	}
	out.Spec = strip(r.Spec)
	out.Baseline = strip(r.Baseline)
	return &out
}

// DeterministicJSON marshals the deterministic portion, indented.
func (r *Report) DeterministicJSON() ([]byte, error) {
	return json.MarshalIndent(r.Deterministic(), "", "  ")
}

// JSON marshals the full report, indented.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// CompareOptions tune the regression gate.
type CompareOptions struct {
	// TolerancePct is the allowed relative drift, in percent, for every
	// gated metric (default 10).
	TolerancePct float64
	// LatencySlackMS forgives absolute latency differences below this
	// many milliseconds — sub-millisecond in-process runs sit inside
	// scheduler noise and one histogram bucket (default 0.75).
	LatencySlackMS float64
	// Absolute additionally gates the raw per-arm throughput and p99,
	// which only makes sense when baseline and candidate ran on the
	// same class of machine. Off by default: the machine-portable gates
	// are the deterministic counts/ratios and the arm-relative timing.
	Absolute bool
}

// Compare gates current against baseline, returning one message per
// violated bound (empty means the gate passes). Deterministic counts and
// ratios must stay within tolerance; errors and shed may not appear
// where the baseline had none; the arm-relative p99 and throughput
// ratios may not regress by more than the tolerance.
func Compare(baseline, current *Report, opt CompareOptions) []string {
	if opt.TolerancePct <= 0 {
		opt.TolerancePct = 10
	}
	if opt.LatencySlackMS <= 0 {
		opt.LatencySlackMS = 0.75
	}
	tol := opt.TolerancePct / 100
	var v []string
	fail := func(format string, args ...any) {
		v = append(v, fmt.Sprintf(format, args...))
	}
	if baseline.Schema != current.Schema {
		fail("schema changed: %s -> %s", baseline.Schema, current.Schema)
	}

	relDrift := func(name string, base, cur float64) {
		if base == 0 && cur == 0 {
			return
		}
		den := math.Abs(base)
		if den == 0 {
			den = 1
		}
		if d := math.Abs(cur-base) / den; d > tol {
			fail("%s drifted %.1f%% (baseline %.6g, current %.6g, tolerance %.0f%%)",
				name, d*100, base, cur, opt.TolerancePct)
		}
	}
	// Latency-style: regression only (higher is worse), with the
	// absolute slack floor.
	latWorse := func(name string, base, cur float64) {
		if cur <= base*(1+tol) || cur-base <= opt.LatencySlackMS {
			return
		}
		fail("%s regressed %.1f%% (baseline %.4gms, current %.4gms)",
			name, (cur/base-1)*100, base, cur)
	}

	arm := func(name string, base, cur *Result) {
		if base == nil || cur == nil {
			if base != cur {
				fail("%s arm present in only one report", name)
			}
			return
		}
		relDrift(name+".counts.requests", float64(base.Counts.Requests), float64(cur.Counts.Requests))
		relDrift(name+".counts.bytes_in", float64(base.Counts.BytesIn), float64(cur.Counts.BytesIn))
		relDrift(name+".counts.spec_hits", float64(base.Counts.SpecHits), float64(cur.Counts.SpecHits))
		if base.Counts.Errors == 0 && cur.Counts.Errors > 0 {
			fail("%s.counts.errors: baseline had none, current has %d", name, cur.Counts.Errors)
		}
		if base.Counts.Shed == 0 && cur.Counts.Shed > 0 {
			fail("%s.counts.shed: baseline had none, current has %d", name, cur.Counts.Shed)
		}
		relDrift(name+".ratios.bandwidth", base.Ratios.Bandwidth, cur.Ratios.Bandwidth)
		relDrift(name+".ratios.server_load", base.Ratios.ServerLoad, cur.Ratios.ServerLoad)
		relDrift(name+".ratios.byte_miss_rate", base.Ratios.ByteMissRate, cur.Ratios.ByteMissRate)
		if opt.Absolute && base.Timing != nil && cur.Timing != nil {
			latWorse(name+".timing.latency_ms.p99", base.Timing.Latency.P99, cur.Timing.Latency.P99)
			if bt, ct := base.Timing.Throughput, cur.Timing.Throughput; bt > 0 && ct < bt*(1-tol) {
				fail("%s.timing.throughput_rps regressed %.1f%% (baseline %.6g, current %.6g)",
					name, (1-ct/bt)*100, bt, ct)
			}
		}
	}
	arm("spec", baseline.Spec, current.Spec)
	arm("baseline", baseline.Baseline, current.Baseline)

	if b, c := baseline.Relative, current.Relative; b != nil && c != nil {
		// The spec arm's p99 may not grow relative to the no-spec arm
		// beyond tolerance — unless the absolute p99 gap is inside the
		// slack floor (microsecond in-process tails bounce between
		// adjacent histogram buckets).
		if c.P99Ratio > b.P99Ratio*(1+tol) &&
			current.Spec != nil && current.Baseline != nil &&
			current.Spec.Timing != nil && current.Baseline.Timing != nil &&
			current.Spec.Timing.Latency.P99-current.Baseline.Timing.Latency.P99 > opt.LatencySlackMS {
			fail("relative.p99_ratio regressed: baseline %.4g, current %.4g", b.P99Ratio, c.P99Ratio)
		}
		if b.ThroughputRatio > 0 && c.ThroughputRatio < b.ThroughputRatio*(1-tol) {
			fail("relative.throughput_ratio regressed: baseline %.4g, current %.4g",
				b.ThroughputRatio, c.ThroughputRatio)
		}
	}
	return v
}
