package loadgen

import (
	"bytes"
	"fmt"
	"testing"

	"specweb/internal/leakcheck"
)

// streamConfig is the cube cell config with the streamed drive enabled.
func streamConfig(spec, chaos, over bool) Config {
	cfg := cellConfig(spec, chaos, over)
	cfg.Stream = true
	return cfg
}

// deterministicBytes runs cfg and returns the deterministic JSON with
// the worker count normalized out (it is config echo, not behavior).
func deterministicBytes(t *testing.T, cfg Config, workers int) []byte {
	t.Helper()
	cfg.Workers = workers
	rep, err := RunReport(cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	rep.Config.Workers = 0
	b, err := rep.DeterministicJSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestStreamConformanceCube is the tentpole identity: over the full
// spec × chaos × overload cube, driving the workload from per-client
// seeded cursors produces a deterministic report byte-identical to
// materializing the very same stream and running the classic path.
// Fault-free cells are additionally checked across worker counts (1 vs
// 16); chaos cells compare at a single worker, where both paths consume
// the injector's fault stream in the same order.
func TestStreamConformanceCube(t *testing.T) {
	leakcheck.Check(t)
	for _, spec := range []bool{false, true} {
		for _, chaos := range []bool{false, true} {
			for _, over := range []bool{false, true} {
				name := fmt.Sprintf("spec=%v/chaos=%v/overload=%v", spec, chaos, over)
				t.Run(name, func(t *testing.T) {
					oracle := streamConfig(spec, chaos, over)
					oracle.StreamMaterialize = true
					if chaos {
						want := deterministicBytes(t, oracle, 1)
						got := deterministicBytes(t, streamConfig(spec, chaos, over), 1)
						if !bytes.Equal(want, got) {
							t.Errorf("streamed chaos run diverged from materialized oracle:\n%s\n--- vs ---\n%s", got, want)
						}
						return
					}
					want := deterministicBytes(t, oracle, 3)
					for _, workers := range []int{1, 16} {
						got := deterministicBytes(t, streamConfig(spec, chaos, over), workers)
						if !bytes.Equal(want, got) {
							t.Errorf("streamed run (workers=%d) diverged from materialized oracle:\n%s\n--- vs ---\n%s",
								workers, got, want)
						}
					}
				})
			}
		}
	}
}

// TestStreamOpenLoopConformance pins the paced-arrival drive: the
// streamed dispatcher walks the canonical merge with bounded channels
// instead of materialized queues, and the deterministic section must not
// notice.
func TestStreamOpenLoopConformance(t *testing.T) {
	leakcheck.Check(t)
	base := streamConfig(true, false, false)
	base.OpenLoop = true
	base.Rate = 50000
	base.Burst = 8

	oracle := base
	oracle.StreamMaterialize = true
	want := deterministicBytes(t, oracle, 3)
	got := deterministicBytes(t, base, 5)
	if !bytes.Equal(want, got) {
		t.Errorf("streamed open loop diverged from materialized oracle:\n%s\n--- vs ---\n%s", got, want)
	}
}

// TestStreamAgainstMaterializedWorkload documents the one intended
// divergence: the streamed generator's per-client Poisson superposition
// is a different (statistically equivalent) trace than synth.Generate's
// global schedule, so Stream=true is an opt-in workload, not a drop-in
// byte-identical replacement for the legacy path.
func TestStreamAgainstMaterializedWorkload(t *testing.T) {
	stream := deterministicBytes(t, streamConfig(true, false, false), 3)
	legacy := deterministicBytes(t, cellConfig(true, false, false), 3)
	if bytes.Equal(stream, legacy) {
		t.Fatal("streamed and legacy workloads were byte-identical; the generators should be distinct processes")
	}
}

// shardedReport runs the config split into shards partials and merges.
func shardedReport(t *testing.T, cfg Config, shards int, withBaseline bool) *Report {
	t.Helper()
	var parts []*Partial
	for i := 0; i < shards; i++ {
		c := cfg
		c.ShardIndex = i
		c.ShardCount = shards
		p, err := RunPartial(c, withBaseline)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p)
	}
	rep, err := MergePartials(parts)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestShardMergeIdentity is the distributed identity: partition the
// client population into shards, run each shard as its own partial
// (full warmup, shard-only measurement), and the coordinator's merge
// must be byte-identical — counts, ratios, attribution, overload ledger
// — to the single-process report. Checked for both the materialized and
// the streamed drive, with baseline arm and overload control on so
// every merge path is exercised.
func TestShardMergeIdentity(t *testing.T) {
	leakcheck.Check(t)
	for _, streamed := range []bool{false, true} {
		t.Run(fmt.Sprintf("stream=%v", streamed), func(t *testing.T) {
			cfg := cellConfig(true, false, true)
			cfg.Stream = streamed

			single, err := RunReport(cfg, true)
			if err != nil {
				t.Fatal(err)
			}
			want, _ := single.DeterministicJSON()

			one := shardedReport(t, cfg, 1, true)
			got1, _ := one.DeterministicJSON()
			if !bytes.Equal(want, got1) {
				t.Errorf("merge of one partial diverged from direct run:\n%s\n--- vs ---\n%s", got1, want)
			}

			three := shardedReport(t, cfg, 3, true)
			got3, _ := three.DeterministicJSON()
			if !bytes.Equal(want, got3) {
				t.Errorf("3-shard merge diverged from single-process run:\n%s\n--- vs ---\n%s", got3, want)
			}
		})
	}
}

// TestValidateModes pins the rejected combinations: the streamed drive
// has no materialized trace for the restart harness, and sharded runs
// exclude the per-process state that cannot merge.
func TestValidateModes(t *testing.T) {
	bad := []Config{
		{Stream: true, Restart: &RestartConfig{}},
		{ShardIndex: 1, ShardCount: 0},
		{ShardIndex: 2, ShardCount: 2},
		{ShardCount: 2, Estguard: true},
		{ShardCount: 2, MaxRows: 10},
		{ShardCount: 2, BaseURL: "http://example.invalid"},
		{ShardCount: 2, RealClock: true},
	}
	for i, cfg := range bad {
		if err := cfg.validateModes(); err == nil {
			t.Errorf("case %d: config %+v unexpectedly validated", i, cfg)
		}
	}
	ok := Config{Stream: true, ShardIndex: 1, ShardCount: 2}
	if err := ok.validateModes(); err != nil {
		t.Errorf("streamed sharded config rejected: %v", err)
	}
}
