package loadgen

import (
	"encoding/json"
	"fmt"
	"math"
)

// ScenarioReportSchema versions the BENCH-scenarios.json layout.
const ScenarioReportSchema = "specbench-scenarios/1"

// ScenarioInterceptionBound maps a scenario name to the committed maximum
// allowed interception degradation versus the clean arm, as an absolute
// drop in the interception fraction (consumed/delivered speculative
// bytes). A guarded adversarial run may intercept less than the clean run
// — the adversary does cost something — but never by more than this.
// These bounds gate the CI scenario suite; loosen them only with the
// baseline refresh that justifies it.
var ScenarioInterceptionBound = map[string]float64{
	"flash-crowd":    0.15,
	"diurnal":        0.15,
	"crawler":        0.15,
	"long-tail-scan": 0.15,
	"multi-tenant":   0.20,
}

// ScenarioArm is one suite cell: a scenario × estguard combination run
// over the same base configuration. Everything but P99MS is deterministic
// for a given seed.
type ScenarioArm struct {
	Name     string `json:"name"`
	Scenario string `json:"scenario,omitempty"`
	Estguard bool   `json:"estguard,omitempty"`

	// Interception is consumed/delivered speculative bytes — the paper's
	// "fraction of disseminated data that intercepted a real request".
	Interception float64 `json:"interception"`
	// WastedFraction is wasted/delivered speculative bytes.
	WastedFraction float64       `json:"wasted_fraction"`
	Counts         Counts        `json:"counts"`
	Ratios         Ratios        `json:"ratios"`
	Guard          *EstguardInfo `json:"guard,omitempty"`
	// P99MS is wall-clock demand latency; within one suite run all arms
	// share a process, so arm-relative comparisons are meaningful.
	P99MS float64 `json:"p99_ms"`
}

// ScenarioReport is the BENCH-scenarios.json document.
type ScenarioReport struct {
	Schema string        `json:"schema"`
	Config ConfigInfo    `json:"config"` // the clean arm's configuration
	Arms   []ScenarioArm `json:"arms"`
}

// scenarioSuite is the fixed arm list: the clean control, every
// adversarial profile under guard, and the crawler profile unguarded —
// the pair the poisoning gate compares.
var scenarioSuite = []struct {
	name, scenario string
	estguard       bool
}{
	{"clean", "", true},
	{"flash-crowd", "flash-crowd", true},
	{"diurnal", "diurnal", true},
	{"crawler", "crawler", true},
	{"long-tail-scan", "long-tail-scan", true},
	{"multi-tenant", "multi-tenant", true},
	{"crawler-unguarded", "crawler", false},
}

// RunScenarioSuite executes the adversarial suite over base: one arm per
// suite cell, identical base configuration otherwise. base should have
// Speculate true (it is forced on) — interception is the suite's core
// metric and needs the attribution ledger.
func RunScenarioSuite(base Config) (*ScenarioReport, error) {
	base.Speculate = true
	rep := &ScenarioReport{Schema: ScenarioReportSchema}
	for _, cell := range scenarioSuite {
		cfg := base
		cfg.Workload.Scenario = cell.scenario
		cfg.Estguard = cell.estguard
		res, _, cinfo, err := Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("loadgen: scenario arm %s: %w", cell.name, err)
		}
		arm := ScenarioArm{
			Name:     cell.name,
			Scenario: cell.scenario,
			Estguard: cell.estguard,
			Counts:   res.Counts,
			Ratios:   res.Ratios,
			Guard:    res.Estguard,
		}
		if at := res.Attrib; at != nil && at.Totals.DeliveredBytes > 0 {
			arm.Interception = float64(at.Totals.ConsumedBytes) / float64(at.Totals.DeliveredBytes)
			arm.WastedFraction = float64(at.Totals.WastedBytes) / float64(at.Totals.DeliveredBytes)
		}
		if res.Timing != nil {
			arm.P99MS = res.Timing.Latency.P99
		}
		if cell.name == "clean" {
			rep.Config = cinfo
		}
		rep.Arms = append(rep.Arms, arm)
	}
	return rep, nil
}

// Arm returns the named arm, or nil.
func (r *ScenarioReport) Arm(name string) *ScenarioArm {
	for i := range r.Arms {
		if r.Arms[i].Name == name {
			return &r.Arms[i]
		}
	}
	return nil
}

// JSON marshals the suite report, indented.
func (r *ScenarioReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// CheckScenarioInvariants verifies the suite's structural guarantees,
// which hold regardless of any committed baseline:
//
//   - the guard must pay for itself under poisoning: the guarded crawler
//     arm's interception is strictly better than the unguarded one's;
//   - no guarded adversarial arm degrades interception below the clean
//     arm by more than its committed ScenarioInterceptionBound;
//   - the guarded crawler arm quarantines at least one client (the
//     mechanism actually fired — a vacuous win is a bug);
//   - demand p99 under any scenario stays within p99Factor of the clean
//     arm (a generous same-process smoke bound, not a precision gate).
//
// It returns one message per violated invariant.
func CheckScenarioInvariants(rep *ScenarioReport) []string {
	const p99Factor = 5.0
	var v []string
	fail := func(format string, args ...any) { v = append(v, fmt.Sprintf(format, args...)) }

	clean := rep.Arm("clean")
	if clean == nil {
		return []string{"suite has no clean arm"}
	}
	guarded, unguarded := rep.Arm("crawler"), rep.Arm("crawler-unguarded")
	if guarded == nil || unguarded == nil {
		fail("suite is missing a crawler arm")
	} else {
		if guarded.Interception <= unguarded.Interception {
			fail("crawler poisoning: guarded interception %.4f not strictly better than unguarded %.4f",
				guarded.Interception, unguarded.Interception)
		}
		if guarded.Guard == nil || guarded.Guard.QuarantinedClients == 0 {
			fail("crawler poisoning: guard quarantined no clients")
		}
	}
	for i := range rep.Arms {
		arm := &rep.Arms[i]
		if arm.Name == "clean" || !arm.Estguard {
			continue
		}
		bound, ok := ScenarioInterceptionBound[arm.Scenario]
		if !ok {
			fail("%s: no committed interception bound for scenario %q", arm.Name, arm.Scenario)
			continue
		}
		if drop := clean.Interception - arm.Interception; drop > bound {
			fail("%s: interception %.4f dropped %.4f below clean %.4f (bound %.2f)",
				arm.Name, arm.Interception, drop, clean.Interception, bound)
		}
		if clean.P99MS > 0 && arm.P99MS > clean.P99MS*p99Factor {
			fail("%s: demand p99 %.3fms exceeds %gx the clean arm's %.3fms",
				arm.Name, arm.P99MS, p99Factor, clean.P99MS)
		}
	}
	return v
}

// CompareScenarios gates current against a committed baseline suite: the
// deterministic per-arm metrics (interception, wasted fraction, counts,
// quarantine ledger) must stay within tolerance. Wall-clock p99 is not
// baseline-gated — CheckScenarioInvariants bounds it arm-relatively.
func CompareScenarios(baseline, current *ScenarioReport, tolerancePct float64) []string {
	if tolerancePct <= 0 {
		tolerancePct = 10
	}
	tol := tolerancePct / 100
	var v []string
	fail := func(format string, args ...any) { v = append(v, fmt.Sprintf(format, args...)) }
	if baseline.Schema != current.Schema {
		fail("schema changed: %s -> %s", baseline.Schema, current.Schema)
	}
	drift := func(name string, base, cur float64) {
		if base == 0 && cur == 0 {
			return
		}
		den := math.Abs(base)
		if den == 0 {
			den = 1
		}
		if d := math.Abs(cur-base) / den; d > tol {
			fail("%s drifted %.1f%% (baseline %.6g, current %.6g, tolerance %.0f%%)",
				name, d*100, base, cur, tolerancePct)
		}
	}
	for i := range baseline.Arms {
		b := &baseline.Arms[i]
		c := current.Arm(b.Name)
		if c == nil {
			fail("arm %s missing from current suite", b.Name)
			continue
		}
		drift(b.Name+".interception", b.Interception, c.Interception)
		drift(b.Name+".wasted_fraction", b.WastedFraction, c.WastedFraction)
		drift(b.Name+".counts.requests", float64(b.Counts.Requests), float64(c.Counts.Requests))
		drift(b.Name+".counts.spec_hits", float64(b.Counts.SpecHits), float64(c.Counts.SpecHits))
		drift(b.Name+".ratios.bandwidth", b.Ratios.Bandwidth, c.Ratios.Bandwidth)
		if b.Guard != nil && c.Guard != nil {
			drift(b.Name+".guard.quarantined_clients",
				float64(b.Guard.QuarantinedClients), float64(c.Guard.QuarantinedClients))
			drift(b.Name+".guard.quarantined_requests",
				float64(b.Guard.QuarantinedRequests), float64(c.Guard.QuarantinedRequests))
		}
	}
	for i := range current.Arms {
		if baseline.Arm(current.Arms[i].Name) == nil {
			fail("arm %s missing from baseline suite", current.Arms[i].Name)
		}
	}
	return v
}
