package loadgen

import (
	"reflect"
	"strings"
	"testing"

	"specweb/internal/leakcheck"
)

// TestRestartSuiteInvariants runs the full four-arm kill/restart suite
// on the tiny workload and enforces the durability acceptance criteria:
// warm recovery within the slack of uninterrupted, warm strictly beats
// cold, the corrupt arm falls back to last-good, and no arm drops
// demand traffic.
func TestRestartSuiteInvariants(t *testing.T) {
	leakcheck.Check(t)
	rep, err := RunRestartSuite(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if v := CheckRestartInvariants(rep); len(v) > 0 {
		t.Fatalf("invariants violated:\n  %s", strings.Join(v, "\n  "))
	}
	if _, err := rep.JSON(); err != nil {
		t.Fatal(err)
	}
	// Sanity on the shape the invariants rely on: the crash actually
	// cost the cold arm speculation it had before.
	cold := rep.Cold.Restart
	if cold.Phase1.Interception <= cold.Phase2.Interception {
		t.Fatalf("cold crash did not hurt interception: phase1 %.4f, phase2 %.4f",
			cold.Phase1.Interception, cold.Phase2.Interception)
	}
	// A self-comparison passes the regression gate.
	if v := CompareRestart(rep, rep, 10); len(v) > 0 {
		t.Fatalf("self-compare violations: %v", v)
	}
}

// TestRestartDeterministicAcrossWorkers: the restart arms' counters and
// checkpoint ledgers must not depend on the worker count.
func TestRestartDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *Result {
		cfg := tinyConfig()
		cfg.Workers = workers
		cfg.Restart = &RestartConfig{Mode: RestartWarm}
		return mustRun(t, cfg)
	}
	a, b := run(1), run(6)
	if !reflect.DeepEqual(a.Counts, b.Counts) {
		t.Fatalf("counts depend on workers:\n%+v\n%+v", a.Counts, b.Counts)
	}
	if !reflect.DeepEqual(a.Restart, b.Restart) {
		t.Fatalf("restart ledger depends on workers:\n%+v\n%+v", a.Restart, b.Restart)
	}
	if !reflect.DeepEqual(a.Checkpoint, b.Checkpoint) {
		t.Fatalf("checkpoint counters depend on workers:\n%+v\n%+v", a.Checkpoint, b.Checkpoint)
	}
}

// TestRestartOffLeavesReportUntouched: without the harness the report
// carries no checkpoint or restart sections at all — the serialized
// form is what it was before the feature existed.
func TestRestartOffLeavesReportUntouched(t *testing.T) {
	res := mustRun(t, tinyConfig())
	if res.Checkpoint != nil || res.Restart != nil {
		t.Fatalf("plain run grew restart state: ckpt=%+v restart=%+v",
			res.Checkpoint, res.Restart)
	}
	rep := &Report{Schema: ReportSchema, Spec: res}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"checkpoint", "restart"} {
		if strings.Contains(string(data), `"`+key+`"`) {
			t.Fatalf("plain report serializes %q section", key)
		}
	}
}

// TestCompareRestartFlagsDrift: the gate notices a doctored report.
func TestCompareRestartFlagsDrift(t *testing.T) {
	cfg := tinyConfig()
	cfg.Restart = &RestartConfig{Mode: RestartWarm}
	res := mustRun(t, cfg)
	rep := &RestartReport{
		Schema: RestartSchema, Uninterrupted: res, Warm: res, Cold: res, CorruptFallback: res,
	}
	bad := *res
	badRestart := *res.Restart
	badRestart.Phase2.SpecHits *= 3
	bad.Restart = &badRestart
	doctored := *rep
	doctored.Warm = &bad
	if v := CompareRestart(rep, &doctored, 10); len(v) == 0 {
		t.Fatal("gate missed a 3x spec-hit drift")
	}
}

// TestRestartConfigValidation: modes and incompatible run shapes.
func TestRestartConfigValidation(t *testing.T) {
	cfg := tinyConfig()
	cfg.Restart = &RestartConfig{Mode: "lukewarm"}
	if _, _, _, err := Run(cfg); err == nil {
		t.Fatal("unknown mode accepted")
	}
	cfg = tinyConfig()
	cfg.Restart = &RestartConfig{Mode: RestartCold, CorruptNewest: true}
	if _, _, _, err := Run(cfg); err == nil {
		t.Fatal("corrupt_newest without warm mode accepted")
	}
	cfg = tinyConfig()
	cfg.Restart = &RestartConfig{Mode: RestartWarm}
	cfg.OpenLoop, cfg.Rate = true, 100
	if _, _, _, err := Run(cfg); err == nil {
		t.Fatal("open-loop restart accepted")
	}
	cfg = tinyConfig()
	cfg.Restart = &RestartConfig{Mode: RestartWarm}
	cfg.BaseURL = "http://example.invalid"
	if _, _, _, err := Run(cfg); err == nil {
		t.Fatal("network-mode restart accepted")
	}
}
