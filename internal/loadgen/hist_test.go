package loadgen

import (
	"testing"
	"time"
)

func TestHistQuantiles(t *testing.T) {
	h := NewHist()
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	// Bucket upper bounds err high by at most one growth step (2^(1/4)).
	checks := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Millisecond},
		{0.90, 900 * time.Millisecond},
		{0.99, 990 * time.Millisecond},
		{0.999, 999 * time.Millisecond},
	}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if got < c.want || float64(got) > float64(c.want)*1.2 {
			t.Errorf("q%.3f = %v, want within [%v, %v*1.2]", c.q, got, c.want, c.want)
		}
	}
	if h.Max() != time.Second {
		t.Errorf("max = %v", h.Max())
	}
	if m := h.Mean(); m < 490*time.Millisecond || m > 510*time.Millisecond {
		t.Errorf("mean = %v", m)
	}
}

func TestHistClampsExtremes(t *testing.T) {
	h := NewHist()
	h.Observe(-time.Second)
	h.Observe(time.Nanosecond)
	h.Observe(time.Hour)
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if q := h.Quantile(1); q != time.Hour {
		t.Errorf("q1 = %v, want exact max cap", q)
	}
}

func TestHistMerge(t *testing.T) {
	a, b, all := NewHist(), NewHist(), NewHist()
	for i := 1; i <= 100; i++ {
		d := time.Duration(i*7) * time.Millisecond
		all.Observe(d)
		if i%2 == 0 {
			a.Observe(d)
		} else {
			b.Observe(d)
		}
	}
	a.Merge(b)
	a.Merge(nil)
	a.Merge(NewHist())
	if a.Count() != all.Count() || a.Max() != all.Max() || a.Mean() != all.Mean() {
		t.Fatal("merge lost samples")
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Errorf("q%.2f differs after merge", q)
		}
	}
}

func TestHistEmpty(t *testing.T) {
	h := NewHist()
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Max() != 0 || len(h.Buckets()) != 0 {
		t.Fatal("empty histogram not all-zero")
	}
}
