package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"specweb/internal/attrib"
	"specweb/internal/httpspec"
)

// PartialSchema versions the partial-report wire layout exchanged
// between specbench workers and the coordinator.
const PartialSchema = "specbench-partial/1"

// PartialArm is one arm's shard-local outcome in raw, mergeable form:
// measurement counts restricted to the shard's clients, the exported
// histogram, the miss accumulators behind the service-time ratio, the
// raw attribution export, and the overload freeze/end snapshots. Every
// field is either a commutative sum over the shard's clients or (for
// warmup-derived values) identical across shards, which is what makes
// MergePartials exact.
type PartialArm struct {
	Counts         Counts                        `json:"counts"`
	Hist           HistState                     `json:"hist"`
	MissDurNS      int64                         `json:"miss_dur_ns"`
	MissCount      int64                         `json:"miss_count"`
	ElapsedNS      int64                         `json:"elapsed_ns"`
	Attrib         *attrib.Export                `json:"attrib,omitempty"`
	OverloadFreeze *httpspec.ServerOverloadStats `json:"overload_freeze,omitempty"`
	OverloadEnd    *httpspec.ServerOverloadStats `json:"overload_end,omitempty"`
}

// Partial is one worker process's report over its client shard. A
// coordinator collects one per shard and merges them into a BENCH
// Report whose deterministic section is byte-identical to the
// single-process run of the same config.
type Partial struct {
	Schema     string       `json:"schema"`
	ShardIndex int          `json:"shard_index"`
	ShardCount int          `json:"shard_count"`
	Config     ConfigInfo   `json:"config"`
	Workload   WorkloadInfo `json:"workload"`
	Spec       PartialArm   `json:"spec"`
	Baseline   *PartialArm  `json:"baseline,omitempty"`
}

// RunPartial executes cfg's shard (spec arm and, when withBaseline and
// cfg.Speculate, the no-speculation arm of the identical workload) and
// returns the raw partial report for the coordinator.
func RunPartial(cfg Config, withBaseline bool) (*Partial, error) {
	shards := cfg.ShardCount
	if shards <= 0 {
		shards = 1
	}
	var raw armRaw
	cfg.raw = &raw
	res, winfo, cinfo, err := Run(cfg)
	if err != nil {
		return nil, err
	}
	p := &Partial{
		Schema:     PartialSchema,
		ShardIndex: cfg.ShardIndex,
		ShardCount: shards,
		Config:     cinfo,
		Workload:   *winfo,
		Spec:       partialArm(res, raw),
	}
	if withBaseline && cfg.Speculate {
		b := cfg
		b.Speculate = false
		var braw armRaw
		b.raw = &braw
		bres, _, _, err := Run(b)
		if err != nil {
			return nil, err
		}
		arm := partialArm(bres, braw)
		p.Baseline = &arm
	}
	return p, nil
}

func partialArm(res *Result, raw armRaw) PartialArm {
	return PartialArm{
		Counts:         res.Counts,
		Hist:           raw.Hist,
		MissDurNS:      raw.MissDurNS,
		MissCount:      raw.MissCount,
		ElapsedNS:      raw.ElapsedNS,
		Attrib:         raw.Attrib,
		OverloadFreeze: raw.OverloadFreeze,
		OverloadEnd:    res.Overload,
	}
}

// MergePartials folds one partial per shard into the full BENCH Report.
// Counts sum (warmup errors, identical across shards by construction,
// are taken from the first and cross-checked); histograms merge exactly;
// ratios and timing are recomputed from the merged raw state with the
// same formulas the single-process aggregate uses; attribution exports
// merge through attrib.MergeExports; overload counters reconstruct as
// freeze + Σ per-shard measurement deltas with gauges from shard 0.
func MergePartials(parts []*Partial) (*Report, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("loadgen: no partials to merge")
	}
	want := parts[0].ShardCount
	if want <= 0 {
		want = 1
	}
	if len(parts) != want {
		return nil, fmt.Errorf("loadgen: have %d partials for %d shards", len(parts), want)
	}
	seen := make(map[int]bool, want)
	firstCfg, err := json.Marshal(struct {
		C ConfigInfo
		W WorkloadInfo
	}{parts[0].Config, parts[0].Workload})
	if err != nil {
		return nil, err
	}
	for _, p := range parts {
		if p.Schema != PartialSchema {
			return nil, fmt.Errorf("loadgen: partial schema %q, want %q", p.Schema, PartialSchema)
		}
		if p.ShardCount != parts[0].ShardCount {
			return nil, fmt.Errorf("loadgen: shard-count mismatch: %d vs %d", p.ShardCount, parts[0].ShardCount)
		}
		if p.ShardIndex < 0 || p.ShardIndex >= want || seen[p.ShardIndex] {
			return nil, fmt.Errorf("loadgen: bad or duplicate shard index %d", p.ShardIndex)
		}
		seen[p.ShardIndex] = true
		cfg, err := json.Marshal(struct {
			C ConfigInfo
			W WorkloadInfo
		}{p.Config, p.Workload})
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(cfg, firstCfg) {
			return nil, fmt.Errorf("loadgen: shard %d ran a different config/workload", p.ShardIndex)
		}
	}

	rep := &Report{Schema: ReportSchema, Config: parts[0].Config, Workload: parts[0].Workload}
	specArms := make([]PartialArm, len(parts))
	var baseArms []PartialArm
	nBase := 0
	for i, p := range parts {
		specArms[i] = p.Spec
		if p.Baseline != nil {
			nBase++
			baseArms = append(baseArms, *p.Baseline)
		}
	}
	if nBase != 0 && nBase != len(parts) {
		return nil, fmt.Errorf("loadgen: baseline arm present in %d of %d partials", nBase, len(parts))
	}
	rep.Spec, err = mergeArms(specArms)
	if err != nil {
		return nil, err
	}
	if nBase > 0 {
		rep.Baseline, err = mergeArms(baseArms)
		if err != nil {
			return nil, err
		}
		if st, bt := rep.Spec.Timing, rep.Baseline.Timing; st != nil && bt != nil &&
			bt.Latency.P99 > 0 && bt.Throughput > 0 {
			rep.Relative = &Relative{
				P99Ratio:        st.Latency.P99 / bt.Latency.P99,
				ThroughputRatio: st.Throughput / bt.Throughput,
			}
		}
	}

	// The coordinator's own heap snapshot stands in for the per-process
	// memory lines (wall-clock section; never part of the fingerprint).
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	for _, res := range []*Result{rep.Spec, rep.Baseline} {
		if res != nil && res.Timing != nil {
			res.Timing.Memory = &MemoryInfo{HeapAllocBytes: ms.HeapAlloc, SysBytes: ms.Sys}
		}
	}
	return rep, nil
}

// mergeArms reconstructs one arm's Result from its shard partials using
// the single-process aggregate formulas over the merged raw state.
func mergeArms(arms []PartialArm) (*Result, error) {
	var (
		c         Counts
		missDur   time.Duration
		missCount int64
		elapsed   time.Duration
		exports   []*attrib.Export
		haveAttr  bool
	)
	hist := NewHist()
	for i, a := range arms {
		h, err := ImportHist(a.Hist)
		if err != nil {
			return nil, err
		}
		hist.Merge(h)
		missDur += time.Duration(a.MissDurNS)
		missCount += a.MissCount
		if e := time.Duration(a.ElapsedNS); e > elapsed {
			elapsed = e
		}
		if i == 0 {
			c.WarmupErrors = a.Counts.WarmupErrors
		} else if a.Counts.WarmupErrors != c.WarmupErrors {
			return nil, fmt.Errorf("loadgen: shards disagree on warmup errors (%d vs %d) — warmup replays diverged",
				a.Counts.WarmupErrors, c.WarmupErrors)
		}
		c.Requests += a.Counts.Requests
		c.CacheHits += a.Counts.CacheHits
		c.SpecHits += a.Counts.SpecHits
		c.Pushed += a.Counts.Pushed
		c.Prefetched += a.Counts.Prefetched
		c.Errors += a.Counts.Errors
		c.Shed += a.Counts.Shed
		c.Retries += a.Counts.Retries
		c.StaleServes += a.Counts.StaleServes
		c.BytesIn += a.Counts.BytesIn
		c.DemandBytes += a.Counts.DemandBytes
		c.MissBytes += a.Counts.MissBytes
		c.SpecHitBytes += a.Counts.SpecHitBytes
		if a.Attrib != nil {
			haveAttr = true
		}
		exports = append(exports, a.Attrib)
	}
	c.BaselineBytes = c.MissBytes + c.SpecHitBytes

	res := &Result{
		Counts: c,
		Ratios: Ratios{
			Bandwidth:    ratio(float64(c.BytesIn), float64(c.BaselineBytes)),
			ServerLoad:   ratio(float64(c.Requests-c.CacheHits+c.Prefetched), float64(c.Requests-c.CacheHits+c.SpecHits)),
			ByteMissRate: ratio(float64(c.MissBytes), float64(c.BaselineBytes)),
		},
	}
	timing := &Timing{
		DurationSeconds: elapsed.Seconds(),
		Latency:         quantiles(hist),
		Histogram:       hist.Buckets(),
		ServiceTime:     1,
	}
	if elapsed > 0 {
		timing.Throughput = float64(hist.Count()) / elapsed.Seconds()
	}
	if hist.Count() > 0 {
		var meanMiss time.Duration
		if missCount > 0 {
			meanMiss = missDur / time.Duration(missCount)
		}
		observed := float64(hist.sum)
		baseline := observed + float64(c.SpecHits)*float64(meanMiss)
		timing.ServiceTime = ratio(observed, baseline)
	}
	res.Timing = timing

	if haveAttr {
		rep, err := attrib.MergeExports(exports, attribTopDocs)
		if err != nil {
			return nil, err
		}
		res.Attrib = rep
	}
	res.Overload = mergeOverload(arms)
	return res, nil
}

// mergeOverload reconstructs the single-process overload stats: the
// warmup-boundary freeze snapshot is identical across shards (every
// shard replays the full warmup under the frozen virtual clock), the
// measurement-phase counter deltas partition by shard, and the gauges
// and governor state come from shard 0's end snapshot.
func mergeOverload(arms []PartialArm) *httpspec.ServerOverloadStats {
	first := arms[0].OverloadEnd
	if first == nil {
		return nil
	}
	out := *first
	if out.Admission != nil {
		adm := *out.Admission
		out.Admission = &adm
	}
	fz := arms[0].OverloadFreeze
	if fz == nil || len(arms) == 1 {
		return &out
	}
	out.PushesSuppressed = fz.PushesSuppressed
	out.EmbedsSuppressed = fz.EmbedsSuppressed
	out.DemandShed = fz.DemandShed
	for _, a := range arms {
		e, f := a.OverloadEnd, a.OverloadFreeze
		if e == nil || f == nil {
			continue
		}
		out.PushesSuppressed += e.PushesSuppressed - f.PushesSuppressed
		out.EmbedsSuppressed += e.EmbedsSuppressed - f.EmbedsSuppressed
		out.DemandShed += e.DemandShed - f.DemandShed
	}
	if out.Admission != nil && fz.Admission != nil {
		d, s := fz.Admission.Demand, fz.Admission.Speculative
		for _, a := range arms {
			if a.OverloadEnd == nil || a.OverloadEnd.Admission == nil ||
				a.OverloadFreeze == nil || a.OverloadFreeze.Admission == nil {
				continue
			}
			ea, fa := a.OverloadEnd.Admission, a.OverloadFreeze.Admission
			d.Admitted += ea.Demand.Admitted - fa.Demand.Admitted
			d.Rejected += ea.Demand.Rejected - fa.Demand.Rejected
			d.Queued += ea.Demand.Queued - fa.Demand.Queued
			s.Admitted += ea.Speculative.Admitted - fa.Speculative.Admitted
			s.Rejected += ea.Speculative.Rejected - fa.Speculative.Rejected
			s.Queued += ea.Speculative.Queued - fa.Speculative.Queued
		}
		d.Inflight, d.Waiting = out.Admission.Demand.Inflight, out.Admission.Demand.Waiting
		s.Inflight, s.Waiting = out.Admission.Speculative.Inflight, out.Admission.Speculative.Waiting
		out.Admission.Demand, out.Admission.Speculative = d, s
	}
	return &out
}
