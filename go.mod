module specweb

go 1.22
