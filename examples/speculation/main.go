// Speculation walkthrough: the §3 pipeline on a multimedia-heavy workload —
// estimate the document-dependency matrix, inspect the Figure 4 structure,
// sweep the speculation threshold, and compare cooperative and prefetching
// variants.
//
// Run with:
//
//	go run ./examples/speculation
package main

import (
	"fmt"
	"log"
	"time"

	"specweb/internal/experiments"
	"specweb/internal/markov"
	"specweb/internal/netsim"
	"specweb/internal/simulate"
	"specweb/internal/webgraph"
)

func main() {
	// A media site (in the spirit of the paper's Rolling Stones footnote):
	// fewer pages, much larger objects, sharper popularity skew.
	profile := webgraph.MediaSite()
	profile.Pages = 120
	cfg := experiments.WorkloadConfig{
		Profile:        profile,
		Net:            netsim.TinyConfig(),
		Days:           21,
		SessionsPerDay: 70,
		Seed:           42,
	}
	w, err := experiments.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("media workload: %d requests over %d days, %s served\n\n",
		w.Trace.Len(), cfg.Days, experiments.FmtBytes(w.Trace.TotalBytes()))

	// Step 1 — the dependency matrix P (§3.1, Figure 4).
	m, err := markov.Estimate(w.Trace, markov.EstimateConfig{
		Window: 5 * time.Second, StrideTimeout: 5 * time.Second,
		MinOccurrences: 5, Smoothing: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	h := m.PairHistogram(10)
	fmt.Printf("P matrix: %d dependent pairs across %d documents\n", m.NumPairs(), m.NumRows())
	fmt.Printf("embedding peak (p in [0.9,1.0]) holds %.0f%% of pairs\n\n", 100*h.Fraction(9))

	// Step 2 — threshold sweep (Figures 5–6).
	fmt.Println("threshold sweep (push mode, baseline parameters):")
	pts, err := experiments.Figure5(w, []float64{0.9, 0.5, 0.25, 0.1})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pts {
		fmt.Printf("  Tp=%.2f: %s\n", p.Tp, p.Ratios)
	}
	fmt.Println()

	// Step 3 — cooperative clients (§3.4): the client piggybacks a digest
	// of its cache, so the server never pushes what it already has.
	sched, err := simulate.BuildSchedule(w.Trace, simulate.Baseline(w.Site, 0.25))
	if err != nil {
		log.Fatal(err)
	}
	plain := simulate.Baseline(w.Site, 0.25)
	rp, err := simulate.RunWithSchedule(w.Trace, plain, sched)
	if err != nil {
		log.Fatal(err)
	}
	coop := simulate.Baseline(w.Site, 0.25)
	coop.Cooperative = true
	rc, err := simulate.RunWithSchedule(w.Trace, coop, sched)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plain:       %s\n", rp.Ratios)
	fmt.Printf("cooperative: %s\n\n", rc.Ratios)

	// Step 4 — delivery modes (§3.4): pushing versus hinting versus the
	// hybrid protocol.
	for _, mode := range []simulate.Mode{simulate.ModePush, simulate.ModeHints, simulate.ModeHybrid} {
		mc := simulate.Baseline(w.Site, 0.25)
		mc.Mode = mode
		mc.PrefetchTp = 0.25
		r, err := simulate.RunWithSchedule(w.Trace, mc, sched)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7s %s (pushed %d, prefetched %d)\n",
			mode.String()+":", r.Ratios, r.SpeculatedDocs, r.PrefetchedDocs)
	}

	// Step 5 — MaxSize (§3.4): on a media site the size cap matters, since
	// the object tail is enormous.
	fmt.Println("\nMaxSize sweep at Tp=0.25:")
	for _, maxSize := range []int64{0, 256 << 10, 29 << 10, 15 << 10} {
		mc := simulate.Baseline(w.Site, 0.25)
		mc.MaxSize = maxSize
		r, err := simulate.RunWithSchedule(w.Trace, mc, sched)
		if err != nil {
			log.Fatal(err)
		}
		name := "∞"
		if maxSize > 0 {
			name = experiments.FmtBytes(maxSize)
		}
		fmt.Printf("  MaxSize %-8s %s\n", name+":", r.Ratios)
	}
}
