// Cluster walkthrough: the §2.1 model end to end. Three home servers of
// very different popularity share one service proxy; each server estimates
// its demand parameters (R, λ) from its own logs, the proxy splits its
// storage optimally (eqs. 4–5), and the predicted interception fraction α
// is checked against a held-out replay — including what the naive splits
// would have achieved.
//
// Run with:
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"

	"specweb/internal/cluster"
	"specweb/internal/experiments"
	"specweb/internal/stats"
	"specweb/internal/synth"
	"specweb/internal/webgraph"
)

func main() {
	// Three departments' servers: one busy, one moderate, one quiet.
	rates := []float64{150, 60, 20}
	var members []cluster.Member
	for i, rate := range rates {
		p := webgraph.TinySite()
		p.Name = fmt.Sprintf("dept%c", 'A'+i)
		site, err := webgraph.Generate(p, stats.NewRNG(int64(40+i)))
		if err != nil {
			log.Fatal(err)
		}
		cfg := synth.DefaultConfig(site, nil)
		cfg.Days = 30
		cfg.SessionsPerDay = rate
		cfg.RemoteClients = 200
		cfg.LocalClients = 12
		res, err := synth.Generate(cfg, stats.NewRNG(int64(50+i)))
		if err != nil {
			log.Fatal(err)
		}
		members = append(members, cluster.Member{Name: p.Name, Site: site, Trace: res.Trace})
		fmt.Printf("%s: %d requests over 30 days (%s served)\n",
			p.Name, res.Trace.Len(), experiments.FmtBytes(res.Trace.TotalBytes()))
	}
	fmt.Println()

	budget := int64(800 << 10)
	fmt.Printf("proxy storage budget: %s\n\n", experiments.FmtBytes(budget))

	for _, s := range []cluster.Strategy{
		cluster.Exponential, cluster.GreedyEmpirical,
		cluster.ProportionalSplit, cluster.EqualSplit,
	} {
		res, err := cluster.Simulate(members, cluster.Config{Budget: budget, Strategy: s})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-13s measured α = %.1f%%", s.String()+":", 100*res.MeasuredAlpha)
		if s == cluster.Exponential {
			fmt.Printf(" (model predicted %.1f%%)", 100*res.PredictedAlpha)
		}
		fmt.Println()
		if s == cluster.Exponential {
			for _, sr := range res.Servers {
				fmt.Printf("    %s: R=%s/period λ=%.2g → %s for %d docs (intercepts %d/%d remote requests)\n",
					sr.Name, experiments.FmtBytes(int64(sr.R)), sr.Lambda,
					experiments.FmtBytes(sr.Alloc), sr.ReplicaDocs, sr.Intercepted, sr.EvalRemote)
			}
		}
	}
}
