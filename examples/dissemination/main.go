// Dissemination walkthrough: the full §2 pipeline on a department-site
// workload — analyze the logs, classify documents, fit the exponential
// popularity model, size and allocate proxy storage, place proxies on the
// clientele tree, and simulate the traffic savings.
//
// Run with:
//
//	go run ./examples/dissemination
package main

import (
	"fmt"
	"log"

	"specweb/internal/allocation"
	"specweb/internal/clienttree"
	"specweb/internal/experiments"
	"specweb/internal/popularity"
	"specweb/internal/webgraph"
)

func main() {
	cfg := experiments.SmallWorkload()
	cfg.Days = 30
	w, err := experiments.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Step 1 — server-side log analysis (§2, Figure 1).
	an := popularity.Analyze(w.Trace, w.Site)
	lambda, err := an.FitLambda(popularity.ByRemoteRequests)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accessed: %d documents, %s (site holds %s)\n",
		len(an.Docs), experiments.FmtBytes(an.AccessedBytes), experiments.FmtBytes(an.SiteBytes))
	fmt.Printf("fitted exponential popularity constant λ = %.3g per byte\n\n", lambda)

	// Step 2 — classification (§2): which documents are worth pushing
	// toward remote consumers?
	cls := an.Classify(popularity.DefaultClassify())
	fmt.Printf("document classes: %d remotely / %d locally / %d globally popular\n\n",
		cls.Counts[popularity.RemotelyPopular],
		cls.Counts[popularity.LocallyPopular],
		cls.Counts[popularity.GloballyPopular])

	// Step 3 — proxy sizing (eq. 10): how much storage would a proxy need
	// to shield this server (as one of a 10-server cluster) from 90% of
	// its remote traffic?
	b0, err := allocation.SizingB0(10, lambda, 0.90)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("eq. 10: a 10-server cluster proxy needs %s for 90%% interception\n\n",
		experiments.FmtBytes(int64(b0)))

	// Step 4 — allocation across an asymmetric cluster (eqs. 4–5):
	// pretend this server shares a proxy with two busier ones.
	demands := []allocation.Server{
		{R: 3e6, Lambda: lambda},     // a popular peer
		{R: 1e6, Lambda: lambda * 3}, // a peer with more skewed access
		{R: 0.5e6, Lambda: lambda},   // our modest server
	}
	bs, err := allocation.ExponentialAllocate(b0, demands)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("optimal proxy storage split across the cluster:")
	for i, b := range bs {
		fmt.Printf("  server %d (R=%.1gMB/day, λ=%.2g): %s\n",
			i+1, demands[i].R/1e6, demands[i].Lambda, experiments.FmtBytes(int64(b)))
	}
	fmt.Printf("expected intercepted fraction α = %.1f%%\n\n",
		100*allocation.Alpha(bs, demands))

	// Step 5 — proxy placement on the clientele tree (§2.1) and the
	// trace-driven savings simulation (Figure 3).
	replicaIDs := an.TopFraction(0.10, popularity.ByRequests)
	replicas := map[webgraph.DocID]bool{}
	for _, id := range replicaIDs {
		replicas[id] = true
	}
	demand, err := clienttree.BuildDemand(w.Trace, w.Topo, replicas)
	if err != nil {
		log.Fatal(err)
	}
	proxies := demand.GreedyPlace(4)
	fmt.Printf("greedy proxy placement chose %d nodes:\n", len(proxies))
	for _, p := range proxies {
		n := w.Topo.Node(p)
		fmt.Printf("  node %d (%s, depth %d, %d clients beneath)\n",
			p, n.Kind, n.Depth, len(w.Topo.SubtreeClients(p)))
	}
	saved := demand.Savings(proxies)
	base := demand.BaselineByteHops()
	fmt.Printf("bytes×hops: %d → %d (%.1f%% saved)\n",
		base, base-saved, 100*float64(saved)/float64(base))
}
