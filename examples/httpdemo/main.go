// HTTP demo: the live prototype round trip. Starts a speculative server on
// a synthetic site, trains it with a few browsing sessions, then shows a
// bundle-consuming client getting embedded objects for free, a cooperative
// client avoiding duplicate pushes, and a dissemination proxy shielding the
// origin.
//
// Run with:
//
//	go run ./examples/httpdemo
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"specweb/internal/httpspec"
	"specweb/internal/stats"
	"specweb/internal/webgraph"
)

func main() {
	site, err := webgraph.Generate(webgraph.TinySite(), stats.NewRNG(7))
	if err != nil {
		log.Fatal(err)
	}

	// A controllable clock lets the demo replay "days" of training in
	// microseconds.
	now := time.Date(1995, time.July, 1, 9, 0, 0, 0, time.UTC)
	cfg := httpspec.DefaultServerConfig()
	cfg.Mode = httpspec.ModePush
	cfg.Engine.MinOccurrences = 2
	cfg.Engine.Tp = 0.3
	cfg.Clock = func() time.Time { return now }

	srv, err := httpspec.NewServer(httpspec.NewSiteStore(site), cfg)
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	fmt.Printf("speculative server on %s serving %d documents\n\n", ts.URL, site.NumDocs())

	// Find a page with embedded objects and train the server: several
	// clients browse page → embedded objects, teaching the engine the
	// dependency.
	var page *webgraph.Document
	for i := range site.Docs {
		if site.Docs[i].Kind == webgraph.Page && len(site.Docs[i].Embedded) >= 2 {
			page = &site.Docs[i]
			break
		}
	}
	if page == nil {
		log.Fatal("no page with two embedded objects")
	}
	fmt.Printf("training on %s (embeds %d objects)...\n", page.Path, len(page.Embedded))
	for i := 0; i < 12; i++ {
		c := httpspec.NewClient(ts.URL, httpspec.ClientConfig{ID: fmt.Sprintf("trainer-%d", i)})
		if _, _, err := c.Get(page.Path); err != nil {
			log.Fatal(err)
		}
		for _, e := range page.Embedded {
			now = now.Add(300 * time.Millisecond)
			if _, _, err := c.Get(site.Doc(e).Path); err != nil {
				log.Fatal(err)
			}
		}
		now = now.Add(time.Hour)
	}
	srv.Engine().Refresh(now)
	st := srv.Engine().Stats()
	fmt.Printf("engine learned %d dependency pairs over %d documents\n\n", st.Pairs, st.Docs)

	// A bundle-aware client: one GET brings the page plus its embedded
	// objects speculatively; the follow-up requests are cache hits.
	reader := httpspec.NewClient(ts.URL, httpspec.ClientConfig{
		ID: "reader", AcceptBundles: true,
	})
	before := srv.Stats().Requests
	if _, _, err := reader.Get(page.Path); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reader got the page; server pushed %d documents in the bundle\n",
		reader.Stats().Pushed)
	for _, e := range page.Embedded {
		_, fromCache, err := reader.Get(site.Doc(e).Path)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s served from cache: %v\n", site.Doc(e).Path, fromCache)
	}
	fmt.Printf("server requests for the whole page view: %d (without speculation: %d)\n\n",
		srv.Stats().Requests-before, 1+len(page.Embedded))

	// A cooperative client that already has the objects: the digest
	// suppresses the pushes entirely.
	coop := httpspec.NewClient(ts.URL, httpspec.ClientConfig{
		ID: "coop", AcceptBundles: true, Cooperative: true,
	})
	for _, e := range page.Embedded {
		if _, _, err := coop.Get(site.Doc(e).Path); err != nil {
			log.Fatal(err)
		}
	}
	pushedBefore := srv.Stats().DocsPushed
	if _, _, err := coop.Get(page.Path); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cooperative client with warm cache: %d duplicate pushes\n\n",
		srv.Stats().DocsPushed-pushedBefore)

	// A dissemination proxy: pull the most remotely-popular documents and
	// front the origin.
	proxy := httpspec.NewProxy(ts.URL, nil)
	n, err := proxy.Disseminate(context.Background(), 2*page.Size)
	if err != nil {
		log.Fatal(err)
	}
	pts := httptest.NewServer(proxy)
	defer pts.Close()
	fmt.Printf("proxy disseminated %d documents from the origin\n", n)

	pclient := httpspec.NewClient(pts.URL, httpspec.ClientConfig{ID: "via-proxy"})
	origin := srv.Stats().Requests
	if _, _, err := pclient.Get(page.Path); err != nil {
		log.Fatal(err)
	}
	pst := proxy.Stats()
	fmt.Printf("request via proxy: hits=%d misses=%d; origin saw %d new requests\n",
		pst.Hits, pst.Misses, srv.Stats().Requests-origin)
}
