// Quickstart: generate a small synthetic web workload and run both of the
// paper's protocols end to end — demand-based dissemination (§2) and
// speculative service (§3) — printing the headline numbers.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"specweb/internal/experiments"
	"specweb/internal/simulate"
)

func main() {
	// 1. Build a workload: a synthetic department web site, a hierarchical
	// network topology, and two weeks of browsing traffic.
	w, err := experiments.Build(experiments.SmallWorkload())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("site: %d documents (%s); trace: %d requests from %d clients\n\n",
		w.Site.NumDocs(), experiments.FmtBytes(w.Site.TotalBytes()),
		w.Trace.Len(), len(w.Trace.Clients()))

	// 2. Popularity analysis (Figure 1): how concentrated is demand?
	fig1, err := experiments.Figure1(w, 256<<10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("popularity: top block of documents covers %.0f%% of remote requests; fitted λ = %.3g\n",
		100*fig1.Rows[0].CumReqFrac, fig1.Lambda)

	// 3. Dissemination (Figure 3): push the most popular 10% of data to
	// proxies and measure the bytes×hops saved.
	curves, err := experiments.Figure3(w, []float64{0.10}, []int{1, 4, 8})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range curves[0].Points {
		fmt.Printf("dissemination: %d proxies (%s total) → %.1f%% of network traffic saved\n",
			p.Proxies, experiments.FmtBytes(p.TotalStorage), p.ReductionPct)
	}
	fmt.Println()

	// 4. Speculative service (Figure 5): replay the trace with the server
	// pushing documents it expects the client to request next.
	cfg := simulate.Baseline(w.Site, 0.25)
	res, err := simulate.Run(w.Trace, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("speculation (Tp=0.25): %s\n", res.Ratios)
	fmt.Printf("  %d documents pushed speculatively, %d later used (%.0f%% precision)\n",
		res.SpeculatedDocs, res.UsedDocs,
		100*float64(res.UsedDocs)/float64(res.SpeculatedDocs))
}
