// Package specweb reproduces "Speculative Data Dissemination and Service to
// Reduce Server Load, Network Traffic and Service Time in Distributed
// Information Systems" (Azer Bestavros, ICDE 1996).
//
// The implementation lives under internal/ (see DESIGN.md for the module
// inventory), the runnable tools under cmd/, and worked examples under
// examples/. The benchmark suite in bench_test.go regenerates every table
// and figure of the paper's evaluation; EXPERIMENTS.md records the measured
// results next to the paper's.
package specweb
