// Command disseminate runs the §2.4 trace-driven dissemination simulation
// and prints Figure 3: the reduction in network bandwidth (bytes × hops) as
// the most popular data is disseminated to a growing set of service
// proxies.
//
// Usage:
//
//	disseminate -days 90 -rate 220 -fractions 0.10,0.04 -proxies 16
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"specweb/internal/experiments"
)

func main() {
	var (
		days      = flag.Int("days", 90, "days of traffic")
		rate      = flag.Float64("rate", 220, "mean sessions per day")
		seed      = flag.Int64("seed", 1995, "random seed")
		fractions = flag.String("fractions", "0.10,0.04", "comma-separated popular-data fractions")
		proxies   = flag.Int("proxies", 16, "maximum proxy count")
		small     = flag.Bool("small", false, "use the small test workload")
	)
	flag.Parse()

	var fracs []float64
	for _, f := range strings.Split(*fractions, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			fail(fmt.Errorf("bad fraction %q: %w", f, err))
		}
		fracs = append(fracs, v)
	}
	var counts []int
	for k := 1; k <= *proxies; k++ {
		counts = append(counts, k)
	}

	cfg := experiments.DefaultWorkload()
	if *small {
		cfg = experiments.SmallWorkload()
	}
	cfg.Days = *days
	cfg.SessionsPerDay = *rate
	cfg.Seed = *seed
	w, err := experiments.Build(cfg)
	if err != nil {
		fail(err)
	}

	curves, err := experiments.Figure3(w, fracs, counts)
	if err != nil {
		fail(err)
	}
	fmt.Println("== Figure 3: bandwidth (bytes×hops) saved by dissemination ==")
	for _, c := range curves {
		last := c.Points[len(c.Points)-1]
		fmt.Printf("\n-- most popular %.0f%% of data (per-proxy replica %s) --\n",
			c.Fraction*100, experiments.FmtBytes(last.ReplicaBytes))
		rows := make([][]string, 0, len(c.Points))
		var xs, ys []float64
		for _, p := range c.Points {
			rows = append(rows, []string{
				fmt.Sprintf("%d", p.Proxies),
				experiments.FmtBytes(p.TotalStorage),
				fmt.Sprintf("%.1f%%", p.ReductionPct),
			})
			xs = append(xs, float64(p.Proxies))
			ys = append(ys, p.ReductionPct)
		}
		if err := experiments.Table(os.Stdout, []string{"proxies", "total storage", "reduction"}, rows); err != nil {
			fail(err)
		}
		fmt.Println()
		if err := experiments.Series(os.Stdout,
			fmt.Sprintf("fraction %.0f%%", c.Fraction*100),
			xs, ys, "proxies", "% bytes×hops saved", 40); err != nil {
			fail(err)
		}
	}

	// §2.3's bottleneck discussion: how the proxy tier absorbs the home
	// server's load, and what dynamic shielding does to the busiest proxy.
	lb, err := experiments.LoadBalance(w, fracs[0], counts, 0)
	if err != nil {
		fail(err)
	}
	// Re-run with shielding at half the busiest single-proxy load observed.
	var capacity int64
	maxShare := 0.0
	for _, r := range lb {
		if r.MaxProxySharePct > maxShare {
			maxShare = r.MaxProxySharePct
		}
	}
	capacity = int64(maxShare / 200 * float64(w.Trace.TotalBytes()))
	lb, err = experiments.LoadBalance(w, fracs[0], counts, capacity)
	if err != nil {
		fail(err)
	}
	fmt.Println("\n== §2.3 load balance (home-server relief and proxy concentration) ==")
	rows := make([][]string, 0, len(lb))
	for _, r := range lb {
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Proxies),
			fmt.Sprintf("%.1f%%", r.RootShedPct),
			fmt.Sprintf("%.1f%%", r.MaxProxySharePct),
			fmt.Sprintf("%.1f%%", r.ShieldedRootPct),
			fmt.Sprintf("%.1f%%", r.ShieldedMaxSharePct),
		})
	}
	if err := experiments.Table(os.Stdout,
		[]string{"proxies", "root relief", "busiest proxy", "relief (shielded)", "busiest (shielded)"},
		rows); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "disseminate:", err)
	os.Exit(1)
}
