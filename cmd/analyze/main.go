// Command analyze reproduces the §2 log analysis — Figure 1's block
// popularity profile, the λ fit, and the remote/local/global and mutability
// classifications — over a synthetic workload.
//
// Usage:
//
//	analyze -days 90 -rate 220 -seed 1995 -block 262144
package main

import (
	"flag"
	"fmt"
	"os"

	"specweb/internal/experiments"
	"specweb/internal/popularity"
)

func main() {
	var (
		days  = flag.Int("days", 90, "days of traffic")
		rate  = flag.Float64("rate", 220, "mean sessions per day")
		seed  = flag.Int64("seed", 1995, "random seed")
		block = flag.Int64("block", 256<<10, "block size in bytes (Figure 1 uses 256KB)")
		small = flag.Bool("small", false, "use the small test workload")
	)
	flag.Parse()

	cfg := experiments.DefaultWorkload()
	if *small {
		cfg = experiments.SmallWorkload()
	}
	cfg.Days = *days
	cfg.SessionsPerDay = *rate
	cfg.Seed = *seed

	w, err := experiments.Build(cfg)
	if err != nil {
		fail(err)
	}

	fig1, err := experiments.Figure1(w, *block)
	if err != nil {
		fail(err)
	}
	fmt.Printf("== Figure 1: block popularity (block size %s) ==\n", experiments.FmtBytes(*block))
	fmt.Printf("documents accessed: %d   accessed bytes: %s of %s on site (%.0f%%)\n",
		fig1.DocsAccessed, experiments.FmtBytes(fig1.AccessedBytes),
		experiments.FmtBytes(fig1.SiteBytes),
		100*float64(fig1.AccessedBytes)/float64(fig1.SiteBytes))
	fmt.Printf("fitted lambda: %.4g per byte (paper measured 6.247e-7)\n", fig1.Lambda)
	fmt.Printf("top 10%% of blocks cover %.1f%% of remote requests (paper: 91%%)\n\n",
		100*fig1.Top10PctCoverage)

	rows := make([][]string, 0, len(fig1.Rows))
	limit := len(fig1.Rows)
	if limit > 20 {
		limit = 20
	}
	for _, r := range fig1.Rows[:limit] {
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Block),
			fmt.Sprintf("%d", r.Docs),
			experiments.FmtBytes(r.CumBytes),
			fmt.Sprintf("%.1f%%", 100*r.ReqFrac),
			fmt.Sprintf("%.1f%%", 100*r.CumReqFrac),
		})
	}
	if err := experiments.Table(os.Stdout,
		[]string{"block", "docs", "cum bytes", "req share", "cum req share"}, rows); err != nil {
		fail(err)
	}

	cls, err := experiments.Classification(w)
	if err != nil {
		fail(err)
	}
	fmt.Printf("\n== Document classes (remote-ratio thresholds 85%%/15%%) ==\n")
	clsRows := [][]string{}
	for _, c := range []popularity.Class{
		popularity.RemotelyPopular, popularity.LocallyPopular, popularity.GloballyPopular,
	} {
		clsRows = append(clsRows, []string{
			c.String(),
			fmt.Sprintf("%d", cls.Counts[c]),
			fmt.Sprintf("%.2f%%/day", 100*cls.MeanUpdateRate[c]),
		})
	}
	if err := experiments.Table(os.Stdout, []string{"class", "docs", "mean update rate"}, clsRows); err != nil {
		fail(err)
	}
	fmt.Printf("mutable documents (≥1%%/day): %d\n", cls.MutableDocs)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "analyze:", err)
	os.Exit(1)
}
