// Distributed specbench: a coordinator splits the client population into
// disjoint shards (stable FNV hash inside loadgen), ships one job per
// worker over HTTP, and merges the returned partial reports into a
// BENCH.json byte-identical to the single-process run.
//
// The wire job carries flag-level values — profile NAME, day/session
// overrides, driver knobs — not the resolved config structs, because the
// workload profile holds distribution interfaces that do not survive
// JSON. Coordinator and worker therefore rebuild the config through the
// same jobSpec.config path, which is also what guarantees the merge-time
// config-identity check across shards can hold byte-for-byte.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"

	"specweb/internal/experiments"
	"specweb/internal/httpspec"
	"specweb/internal/loadgen"
	"specweb/internal/netsim"
	"specweb/internal/resilience"
	"specweb/internal/resilience/faults"
	"specweb/internal/webgraph"
)

const (
	jobSchema = "specbench-job/1"
	// listenPrefix is the handshake line a worker prints on stdout once
	// its listener is bound; the spawner scans for it to learn the port.
	listenPrefix = "SPECBENCH_WORKER_LISTENING="
)

// jobSpec is the wire form of one shard's work order. Fields mirror the
// CLI flags (not the resolved structs) so the worker reconstructs the
// exact same workload the coordinator described — same profile lookup,
// same short/override precedence — through jobSpec.config.
type jobSpec struct {
	Schema string `json:"schema"`

	// Workload selection, flag-level.
	Short    bool    `json:"short,omitempty"`
	Profile  string  `json:"profile,omitempty"`
	Days     int     `json:"days,omitempty"`
	Sessions float64 `json:"sessions,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
	Scenario string  `json:"scenario,omitempty"`

	// Driver knobs.
	Workers     int           `json:"workers"`
	Warmup      float64       `json:"warmup"`
	Mode        string        `json:"mode"`
	MaxPush     int           `json:"max_push"`
	Cooperative bool          `json:"cooperative,omitempty"`
	Prefetch    float64       `json:"prefetch"`
	SessionGap  int           `json:"session_gap"`
	Reps        int           `json:"reps"`
	Think       time.Duration `json:"think,omitempty"`
	ThinkJitter time.Duration `json:"think_jitter,omitempty"`
	Rate        float64       `json:"rate,omitempty"`
	Burst       int           `json:"burst,omitempty"`
	Overload    bool          `json:"overload,omitempty"`
	Stream      bool          `json:"stream,omitempty"`
	Timeout     time.Duration `json:"timeout,omitempty"`
	Retries     int           `json:"retries,omitempty"`

	// Chaos knobs (seeded fault injection).
	Chaos         bool          `json:"chaos,omitempty"`
	FaultSeed     int64         `json:"fault_seed,omitempty"`
	FaultErr      float64       `json:"fault_error_rate,omitempty"`
	Fault5xx      float64       `json:"fault_5xx_rate,omitempty"`
	Fault5xxBurst int           `json:"fault_5xx_burst,omitempty"`
	FaultLatency  time.Duration `json:"fault_latency,omitempty"`
	FaultJitter   time.Duration `json:"fault_latency_jitter,omitempty"`
	FaultTruncate float64       `json:"fault_truncate_rate,omitempty"`

	// Shard assignment, set by the coordinator per worker.
	ShardIndex   int  `json:"shard_index"`
	ShardCount   int  `json:"shard_count"`
	WithBaseline bool `json:"with_baseline"`
}

// workload resolves the flag-level workload selection exactly as the
// single-process CLI does: short base, then profile/day/session/seed
// overrides, with the tiny profile pulling in the tiny network.
func (j jobSpec) workload() (experiments.WorkloadConfig, error) {
	wl := experiments.DefaultWorkload()
	if j.Short {
		wl = experiments.SmallWorkload()
	}
	if j.Profile != "" {
		p, err := webgraph.ProfileByName(j.Profile)
		if err != nil {
			return wl, err
		}
		wl.Profile = p
		if j.Profile == "tiny" {
			wl.Net = netsim.TinyConfig()
		}
	}
	if j.Days > 0 {
		wl.Days = j.Days
	}
	if j.Sessions > 0 {
		wl.SessionsPerDay = j.Sessions
	}
	if j.Seed != 0 {
		wl.Seed = j.Seed
	}
	wl.Scenario = j.Scenario
	return wl, nil
}

// config turns the wire job into the loadgen configuration. Single-process
// main and every worker build their config through this one function, so
// a merged distributed report can only be compared against a single run
// of the identical config.
func (j jobSpec) config() (loadgen.Config, error) {
	if j.Schema != jobSchema {
		return loadgen.Config{}, fmt.Errorf("job schema %q, want %q", j.Schema, jobSchema)
	}
	wl, err := j.workload()
	if err != nil {
		return loadgen.Config{}, err
	}
	m, err := httpspec.ParseMode(j.Mode)
	if err != nil {
		return loadgen.Config{}, err
	}
	cfg := loadgen.Config{
		Workload:           wl,
		Seed:               wl.Seed,
		Workers:            j.Workers,
		WarmupFraction:     j.Warmup,
		Speculate:          true,
		Mode:               m,
		MaxPush:            j.MaxPush,
		Cooperative:        j.Cooperative,
		PrefetchThreshold:  j.Prefetch,
		SessionGapRequests: j.SessionGap,
		Reps:               j.Reps,
		Think:              j.Think,
		ThinkJitter:        j.ThinkJitter,
		OpenLoop:           j.Rate > 0,
		Rate:               j.Rate,
		Burst:              j.Burst,
		Overload:           j.Overload,
		Stream:             j.Stream,
		Timeout:            j.Timeout,
		ShardIndex:         j.ShardIndex,
		ShardCount:         j.ShardCount,
	}
	if j.Retries > 1 {
		cfg.Retry = resilience.RetryConfig{MaxAttempts: j.Retries}
	}
	if j.Chaos {
		cfg.Faults = faults.Config{
			Seed:          j.FaultSeed,
			ErrorRate:     j.FaultErr,
			Rate5xx:       j.Fault5xx,
			Burst5xx:      j.Fault5xxBurst,
			Latency:       j.FaultLatency,
			LatencyJitter: j.FaultJitter,
			TruncateRate:  j.FaultTruncate,
		}
	}
	return cfg, nil
}

// workerMux serves the shard protocol: POST /run executes one job and
// returns the partial report, GET /healthz answers liveness probes, and
// POST /quit asks the worker to exit (spawned workers are told to quit by
// the coordinator that owns them).
func workerMux(quit func()) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/run", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var job jobSpec
		if err := json.NewDecoder(r.Body).Decode(&job); err != nil {
			http.Error(w, "decoding job: "+err.Error(), http.StatusBadRequest)
			return
		}
		cfg, err := job.config()
		if err != nil {
			http.Error(w, "bad job: "+err.Error(), http.StatusBadRequest)
			return
		}
		p, err := loadgen.RunPartial(cfg, job.WithBaseline)
		if err != nil {
			http.Error(w, "running shard: "+err.Error(), http.StatusUnprocessableEntity)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(p); err != nil {
			fmt.Fprintf(os.Stderr, "specbench worker: writing partial: %v\n", err)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/quit", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		fmt.Fprintln(w, "bye")
		if quit != nil {
			quit()
		}
	})
	return mux
}

// runWorker binds the listener, prints the handshake line, and serves
// jobs until asked to quit. With exitOnStdinClose (set by the spawner)
// the worker also exits when its stdin pipe closes, so workers never
// outlive a coordinator that died without cleanup.
func runWorker(listen string, exitOnStdinClose bool) error {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	fmt.Printf("%s%s\n", listenPrefix, ln.Addr().String())

	quit := make(chan struct{})
	var once sync.Once
	stop := func() { once.Do(func() { close(quit) }) }
	srv := &http.Server{Handler: workerMux(stop)}
	if exitOnStdinClose {
		go func() {
			io.Copy(io.Discard, os.Stdin)
			stop()
		}()
	}
	go func() {
		<-quit
		// Give the in-flight /quit response a moment to flush.
		time.Sleep(50 * time.Millisecond)
		srv.Close()
	}()
	if err := srv.Serve(ln); err != http.ErrServerClosed {
		return err
	}
	return nil
}

// workerURL normalizes an address flag value into the worker's base URL.
func workerURL(addr string) string {
	if strings.Contains(addr, "://") {
		return strings.TrimRight(addr, "/")
	}
	return "http://" + addr
}

// coordinate assigns shard i of N to worker i, posts the jobs
// concurrently, and merges the partials. The merge enforces the shard
// protocol (schema, coverage, config identity), so a mixed-version or
// misconfigured fleet fails loudly instead of producing a skewed report.
func coordinate(job jobSpec, addrs []string, client *http.Client) (*loadgen.Report, error) {
	if client == nil {
		client = &http.Client{}
	}
	parts := make([]*loadgen.Partial, len(addrs))
	errs := make([]error, len(addrs))
	var wg sync.WaitGroup
	for i, addr := range addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			j := job
			j.ShardIndex = i
			j.ShardCount = len(addrs)
			body, err := json.Marshal(j)
			if err != nil {
				errs[i] = err
				return
			}
			resp, err := client.Post(workerURL(addr)+"/run", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[i] = fmt.Errorf("worker %s: %w", addr, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
				errs[i] = fmt.Errorf("worker %s: %s: %s", addr, resp.Status, strings.TrimSpace(string(msg)))
				return
			}
			var p loadgen.Partial
			if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
				errs[i] = fmt.Errorf("worker %s: decoding partial: %w", addr, err)
				return
			}
			parts[i] = &p
		}(i, addr)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return loadgen.MergePartials(parts)
}

// spawnWorkers self-execs n local workers on loopback ports, scanning
// each one's stdout for the handshake line. The returned stop function
// asks them to quit and reaps the processes; the stdin pipe each worker
// holds guarantees cleanup even if the coordinator dies before calling it.
func spawnWorkers(n int) (addrs []string, stop func(), err error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, nil, err
	}
	type worker struct {
		cmd   *exec.Cmd
		stdin io.WriteCloser
		addr  string
	}
	var workers []worker
	stop = func() {
		client := &http.Client{Timeout: 2 * time.Second}
		for _, w := range workers {
			if w.addr != "" {
				resp, err := client.Post(workerURL(w.addr)+"/quit", "text/plain", nil)
				if err == nil {
					resp.Body.Close()
				}
			}
			w.stdin.Close()
		}
		for _, w := range workers {
			done := make(chan struct{})
			go func(c *exec.Cmd) { c.Wait(); close(done) }(w.cmd)
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				w.cmd.Process.Kill()
				<-done
			}
		}
	}
	defer func() {
		if err != nil {
			stop()
		}
	}()

	for i := 0; i < n; i++ {
		cmd := exec.Command(exe, "-worker", "-listen", "127.0.0.1:0", "-exit-on-stdin-close")
		cmd.Stderr = os.Stderr
		stdin, perr := cmd.StdinPipe()
		if perr != nil {
			return nil, stop, perr
		}
		stdout, perr := cmd.StdoutPipe()
		if perr != nil {
			return nil, stop, perr
		}
		if err = cmd.Start(); err != nil {
			return nil, stop, err
		}
		workers = append(workers, worker{cmd: cmd, stdin: stdin})

		addrCh := make(chan string, 1)
		scanErr := make(chan error, 1)
		go func() {
			sc := bufio.NewScanner(stdout)
			for sc.Scan() {
				if line := sc.Text(); strings.HasPrefix(line, listenPrefix) {
					addrCh <- strings.TrimPrefix(line, listenPrefix)
					// Keep draining so the worker never blocks on stdout.
					for sc.Scan() {
					}
					return
				}
			}
			scanErr <- fmt.Errorf("worker exited before announcing its address")
		}()
		select {
		case addr := <-addrCh:
			workers[len(workers)-1].addr = addr
			addrs = append(addrs, addr)
		case serr := <-scanErr:
			err = serr
			return nil, stop, err
		case <-time.After(30 * time.Second):
			err = fmt.Errorf("timed out waiting for worker %d to announce its address", i)
			return nil, stop, err
		}
	}
	return addrs, stop, nil
}

// runCoordinator executes the distributed benchmark: shard jobs out,
// merge, optionally verify byte-identity against an in-process single
// run, then write/summarize/gate exactly like the single-process path.
func runCoordinator(job jobSpec, addrs []string, verifySingle bool, out, baseline string, tolerance, latSlack float64, absolute, quiet bool) {
	start := time.Now()
	rep, err := coordinate(job, addrs, nil)
	if err != nil {
		fatal(err)
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "specbench: coordinator merged %d shards in %v\n",
			len(addrs), time.Since(start).Round(time.Millisecond))
	}

	if verifySingle {
		cfg, err := job.config()
		if err != nil {
			fatal(err)
		}
		cfg.ShardIndex, cfg.ShardCount = 0, 0
		single, err := loadgen.RunReport(cfg, job.WithBaseline)
		if err != nil {
			fatal(err)
		}
		want, err := single.DeterministicJSON()
		if err != nil {
			fatal(err)
		}
		got, err := rep.DeterministicJSON()
		if err != nil {
			fatal(err)
		}
		if !bytes.Equal(want, got) {
			fmt.Fprintf(os.Stderr, "specbench: distributed merge DIVERGED from single-process run:\n--- merged ---\n%s\n--- single ---\n%s\n", got, want)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "specbench: distributed merge byte-identical to single-process run")
	}

	data, err := rep.JSON()
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if out == "-" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(out, data, 0o644); err != nil {
		fatal(err)
	}
	if !quiet {
		summarize(rep, time.Since(start))
	}

	if baseline != "" {
		base, err := readReport(baseline)
		if err != nil {
			fatal(err)
		}
		violations := loadgen.Compare(base, rep, loadgen.CompareOptions{
			TolerancePct:   tolerance,
			LatencySlackMS: latSlack,
			Absolute:       absolute,
		})
		if len(violations) > 0 {
			fmt.Fprintf(os.Stderr, "specbench: regression gate FAILED against %s:\n", baseline)
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "  - %s\n", v)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "specbench: regression gate passed against %s (tolerance %.0f%%)\n",
			baseline, tolerance)
	}
}
