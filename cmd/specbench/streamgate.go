// The streaming gate (make bench-stream): proves the streamed drive is
// both correct and worth it. Correctness is byte-identity — over a small
// spec × overload cube, driving from per-client seeded cursors must
// produce exactly the deterministic report that materializing the same
// stream produces, across worker counts. Worth-it is the memory bound —
// at a 100k-client population the streamed pipeline's peak live heap
// must stay under a fixed fraction of what materializing the trace
// costs. Results land in BENCH-stream.json; the deterministic fields
// (request/client counts, cell coverage) are gated against a committed
// baseline so silent workload drift fails CI.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"specweb/internal/experiments"
	"specweb/internal/httpspec"
	"specweb/internal/loadgen"
	"specweb/internal/netsim"
	"specweb/internal/stats"
	"specweb/internal/synth"
	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

const (
	streamGateSchema = "specbench-stream/1"

	// Memory-bound arm sizing: a 100k-client population over enough
	// simulated days that the materialized trace is tens of times larger
	// than the cursor state, making the ratio a meaningful bound rather
	// than noise.
	streamGateClients  = 100_000
	streamGateDays     = 10
	streamGateSessions = 25_000

	// streamMemoryBound is the acceptance criterion: streamed peak live
	// heap ≤ this fraction of the materialized trace's live heap.
	streamMemoryBound = 0.2

	// streamSampleEvery is the row interval between peak-heap samples on
	// the streamed arm (each sample forces a GC for a live-bytes reading).
	streamSampleEvery = 1 << 18
)

type streamGateReport struct {
	Schema   string             `json:"schema"`
	Identity streamIdentityInfo `json:"identity"`
	Memory   streamMemoryInfo   `json:"memory"`
}

type streamIdentityInfo struct {
	Cells   int   `json:"cells"`
	Workers []int `json:"workers"`
	OK      bool  `json:"ok"`
}

type streamMemoryInfo struct {
	Clients           int     `json:"clients"`
	Requests          int     `json:"requests"`
	MaterializedBytes uint64  `json:"materialized_bytes"`
	StreamedPeakBytes uint64  `json:"streamed_peak_bytes"`
	Ratio             float64 `json:"ratio"`
	Bound             float64 `json:"bound"`
}

// gateCellConfig is one conformance cell: the tiny workload with the
// streamed drive on, toggling speculation and overload control.
func gateCellConfig(spec, over bool) loadgen.Config {
	wl := experiments.DefaultWorkload()
	wl.Profile = webgraph.TinySite()
	wl.Net = netsim.TinyConfig()
	wl.Days = 2
	wl.SessionsPerDay = 30
	wl.Seed = 7
	return loadgen.Config{
		Workload:           wl,
		Seed:               wl.Seed,
		Workers:            3,
		WarmupFraction:     0.3,
		Speculate:          spec,
		Mode:               httpspec.ModePush,
		MaxPush:            8,
		PrefetchThreshold:  0.25,
		SessionGapRequests: 50,
		Reps:               1,
		Overload:           over,
		Stream:             true,
	}
}

// deterministicCell runs the cell and returns its deterministic JSON with
// the worker count normalized out (config echo, not behavior).
func deterministicCell(cfg loadgen.Config, workers int) ([]byte, error) {
	cfg.Workers = workers
	rep, err := loadgen.RunReport(cfg, false)
	if err != nil {
		return nil, err
	}
	rep.Config.Workers = 0
	return rep.DeterministicJSON()
}

// liveHeap forces a collection and returns the live heap in bytes.
func liveHeap() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// measureStreamMemory runs the trace pipeline both ways over the same
// 100k-client configuration: the streamed arm consumes the canonical
// merge row by row (sampling peak live heap as it goes), the materialized
// arm builds the full trace and measures what holding it costs. The two
// arms regenerate the identical stream, so the request count doubles as a
// determinism cross-check.
func measureStreamMemory(clients, days int, sessionsPerDay float64) (streamMemoryInfo, error) {
	info := streamMemoryInfo{Clients: clients, Bound: streamMemoryBound}
	site, err := webgraph.Generate(webgraph.TinySite(), stats.NewRNG(1995).Split("site"))
	if err != nil {
		return info, err
	}
	scfg := synth.DefaultConfig(site, nil)
	scfg.LocalClients = clients * 3 / 10
	scfg.RemoteClients = clients - scfg.LocalClients
	scfg.Days = days
	scfg.SessionsPerDay = sessionsPerDay

	// Streamed arm first, so the materialized trace never sits in the
	// heap behind its baseline.
	base := liveHeap()
	s, err := synth.NewStream(scfg, 1995)
	if err != nil {
		return info, err
	}
	merged := s.Merged()
	var peak uint64
	sample := func() {
		if h := liveHeap(); h > base && h-base > peak {
			peak = h - base
		}
	}
	n := 0
	for {
		if _, ok := merged.Next(); !ok {
			break
		}
		n++
		if n%streamSampleEvery == 0 {
			sample()
		}
	}
	sample()
	info.Requests = n
	info.StreamedPeakBytes = peak
	s, merged = nil, nil
	_, _ = s, merged

	// Materialized arm: same stream, fully retained.
	base = liveHeap()
	s2, err := synth.NewStream(scfg, 1995)
	if err != nil {
		return info, err
	}
	tr := trace.Materialize(s2.Merged())
	if tr.Len() != n {
		return info, fmt.Errorf("stream regeneration diverged: %d rows materialized, %d streamed", tr.Len(), n)
	}
	if h := liveHeap(); h > base {
		info.MaterializedBytes = h - base
	}
	runtime.KeepAlive(tr)
	if info.MaterializedBytes > 0 {
		info.Ratio = float64(info.StreamedPeakBytes) / float64(info.MaterializedBytes)
	}
	return info, nil
}

// runStreamGate executes both gate halves, writes BENCH-stream.json, and
// exits non-zero on any identity divergence, a busted memory bound, or
// deterministic drift against the committed baseline.
func runStreamGate(out, baselinePath string, quiet bool) {
	start := time.Now()
	rep := streamGateReport{Schema: streamGateSchema}
	rep.Identity.Workers = []int{1, 4}
	rep.Identity.OK = true
	for _, spec := range []bool{false, true} {
		for _, over := range []bool{false, true} {
			rep.Identity.Cells++
			oracle := gateCellConfig(spec, over)
			oracle.StreamMaterialize = true
			want, err := deterministicCell(oracle, 3)
			if err != nil {
				fatal(err)
			}
			for _, w := range rep.Identity.Workers {
				got, err := deterministicCell(gateCellConfig(spec, over), w)
				if err != nil {
					fatal(err)
				}
				if !bytes.Equal(want, got) {
					rep.Identity.OK = false
					fmt.Fprintf(os.Stderr,
						"specbench: stream gate: cell spec=%v overload=%v workers=%d diverged from the materialized oracle\n",
						spec, over, w)
				}
			}
		}
	}

	mem, err := measureStreamMemory(streamGateClients, streamGateDays, streamGateSessions)
	if err != nil {
		fatal(err)
	}
	rep.Memory = mem

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if out == "-" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(out, data, 0o644); err != nil {
		fatal(err)
	}

	if !quiet {
		fmt.Fprintf(os.Stderr,
			"specbench: stream gate: %d identity cells ok=%v; memory %d clients / %d requests: streamed peak %s vs materialized %s (ratio %.3f, bound %.2f), took %v\n",
			rep.Identity.Cells, rep.Identity.OK, mem.Clients, mem.Requests,
			experiments.FmtBytes(int64(mem.StreamedPeakBytes)),
			experiments.FmtBytes(int64(mem.MaterializedBytes)),
			mem.Ratio, mem.Bound, time.Since(start).Round(time.Millisecond))
	}

	var violations []string
	if !rep.Identity.OK {
		violations = append(violations, "streamed runs diverged from the materialized oracle")
	}
	if mem.Ratio > mem.Bound {
		violations = append(violations, fmt.Sprintf(
			"streamed peak heap is %.3f× the materialized trace, bound %.2f×", mem.Ratio, mem.Bound))
	}
	if baselinePath != "" {
		bd, err := os.ReadFile(baselinePath)
		if err != nil {
			fatal(err)
		}
		var base streamGateReport
		if err := json.Unmarshal(bd, &base); err != nil {
			fatal(fmt.Errorf("parsing %s: %w", baselinePath, err))
		}
		// Only the deterministic fields gate against the baseline; the
		// byte counts are machine-local.
		if base.Memory.Clients != mem.Clients || base.Memory.Requests != mem.Requests {
			violations = append(violations, fmt.Sprintf(
				"deterministic workload drifted from %s: %d clients / %d requests, baseline %d / %d",
				baselinePath, mem.Clients, mem.Requests, base.Memory.Clients, base.Memory.Requests))
		}
		if base.Identity.Cells != rep.Identity.Cells {
			violations = append(violations, fmt.Sprintf(
				"identity coverage changed: %d cells, baseline %d", rep.Identity.Cells, base.Identity.Cells))
		}
	}
	if len(violations) > 0 {
		fmt.Fprintln(os.Stderr, "specbench: stream gate FAILED:")
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "  - %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "specbench: stream gate passed")
}
