// specbench is the deterministic benchmark driver: it generates a
// synthetic workload, drives the speculative HTTP stack (in-process by
// default, or a live server with -server), and writes a BENCH.json
// report — throughput, log-bucketed latency percentiles, error/shed
// counts, and the paper's four speculative-vs-baseline ratios.
//
// By default it runs two arms over the identical workload — speculation
// on and off — so the report carries the machine-portable arm-relative
// comparison. With -baseline it additionally gates the run against a
// committed report and exits non-zero on regression:
//
//	specbench -short -o BENCH.json
//	specbench -short -o BENCH.json -baseline testdata/bench_baseline.json
//
// Everything outside the report's timing sections is byte-deterministic
// for a given seed (same seed ⇒ identical counts and ratios, regardless
// of worker count or machine), so the gate holds those fields to zero
// drift and applies the tolerance only to wall-clock metrics.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"specweb/internal/experiments"
	"specweb/internal/loadgen"
	"specweb/internal/obs"
	"specweb/internal/synth"
)

func main() {
	var (
		short   = flag.Bool("short", false, "run the small workload (200-page site, 14 days) instead of the full 90-day evaluation")
		profile = flag.String("profile", "", "override the site profile: department, media, or tiny")
		days    = flag.Int("days", 0, "override observed days")
		sess    = flag.Float64("sessions", 0, "override sessions/day")
		seed    = flag.Int64("seed", 0, "workload seed (0 = the workload's default)")

		workers = flag.Int("workers", 4, "concurrent client drivers")
		warmup  = flag.Float64("warmup", 0.3, "leading trace fraction replayed sequentially to train the engine")
		mode    = flag.String("mode", "hybrid", "delivery mode for the speculative arm: push, hints, or hybrid")
		maxPush = flag.Int("max-push", 16, "documents pushed per response")
		coop    = flag.Bool("cooperative", false, "clients send cache digests")
		pref    = flag.Float64("prefetch", 0.25, "follow prefetch hints at or above this probability (0 = off)")
		session = flag.Int("session", 50, "purge each client's cache every N requests (negative = never)")
		reps    = flag.Int("reps", 5, "repeat each arm and report the fastest rep's timing (counts are identical across reps)")
		think   = flag.Duration("think", 0, "closed-loop think time between a worker's requests")
		jitter  = flag.Duration("think-jitter", 0, "uniform extra think time in [0, jitter), per-worker RNG stream")

		rate  = flag.Float64("rate", 0, "open-loop arrival rate in requests/second (0 = closed loop)")
		burst = flag.Int("burst", 1, "requests dispatched per open-loop arrival tick")

		server    = flag.String("server", "", "drive this live server instead of the in-process stack (counts are then not byte-deterministic)")
		realclock = flag.Bool("realclock", false, "in-process server uses wall-clock time (required for latency-driven overload governing; breaks count determinism)")
		overloadF = flag.Bool("overload", false, "install admission control and the speculation governor on the in-process server")
		noBase    = flag.Bool("no-baseline-arm", false, "skip the speculation-off arm (faster, but no arm-relative comparison)")

		scenario  = flag.String("scenario", "", "overlay an adversarial workload profile: "+scenarioNames())
		estguardF = flag.Bool("estguard", false, "install the estimator-hardening guard (classification/quarantine, drift refresh, confidence damping)")
		suite     = flag.Bool("scenario-suite", false, "run the adversarial scenario suite (clean + 5 scenarios guarded + crawler unguarded) and write BENCH-scenarios.json")
		maxRows   = flag.Int("max-rows", 0, "bound the dependency estimator to this many tracked documents (0 with -row-topk 0: exact)")
		rowTopK   = flag.Int("row-topk", 0, "bound each estimator row to its top K successors, space-saving style (0 with -max-rows 0: exact)")

		restartF  = flag.Bool("restart", false, "run the kill/restart chaos suite (uninterrupted + warm + cold + corrupt-fallback arms) and write the restart report")
		crashFrac = flag.Float64("crash-frac", 0.5, "restart: fraction of the measured trace served before the crash")

		timeout = flag.Duration("timeout", 0, "per-request timeout (0 = none)")
		retries = flag.Int("retries", 1, "max attempts per demand fetch (1 = no retries)")

		streamF   = flag.Bool("stream", false, "drive the workload from per-client seeded stream cursors instead of a materialized trace (O(clients) memory; a distinct, statistically equivalent workload)")
		gateF     = flag.Bool("stream-gate", false, "run the streaming gate (streamed-vs-materialized byte identity plus the 100k-client memory bound) and write BENCH-stream.json")
		workerF   = flag.Bool("worker", false, "serve shard jobs over HTTP (POST /run) instead of running a benchmark")
		listenF   = flag.String("listen", "127.0.0.1:0", "worker listen address")
		exitStdin = flag.Bool("exit-on-stdin-close", false, "worker exits when stdin closes (set by -spawn so workers never outlive their coordinator)")
		coordF    = flag.String("coordinator", "", "comma-separated worker addresses; shard the run across them and merge the partial reports")
		spawnN    = flag.Int("spawn", 0, "self-exec this many local workers and coordinate across them")
		verifyS   = flag.Bool("verify-single", false, "after the distributed merge, run the same config single-process and require byte-identical deterministic reports")

		chaos         = flag.Bool("chaos", false, "inject transport faults (seeded; chaos runs are not byte-deterministic)")
		faultSeed     = flag.Int64("fault-seed", 0, "chaos: fault injection seed (0 = fixed default)")
		faultErr      = flag.Float64("fault-error-rate", 0.05, "chaos: probability a request fails with a connection error")
		fault5xx      = flag.Float64("fault-5xx-rate", 0, "chaos: probability a request draws a synthetic 500 burst")
		fault5xxBurst = flag.Int("fault-5xx-burst", 1, "chaos: consecutive 500s per 5xx draw")
		faultLatency  = flag.Duration("fault-latency", 0, "chaos: added latency per request")
		faultJitter   = flag.Duration("fault-latency-jitter", 0, "chaos: uniform extra latency in [0, jitter)")
		faultTruncate = flag.Float64("fault-truncate-rate", 0, "chaos: probability a response body is cut short")

		version   = flag.Bool("version", false, "print build information and exit")
		out       = flag.String("o", "BENCH.json", "output report path (- = stdout)")
		baseline  = flag.String("baseline", "", "gate against this committed BENCH.json and exit 1 on regression")
		tolerance = flag.Float64("tolerance", 10, "allowed drift in percent for gated metrics")
		latSlack  = flag.Float64("lat-slack-ms", 0.75, "absolute latency difference forgiven by the gate, in ms")
		absolute  = flag.Bool("absolute", false, "also gate raw per-arm throughput and p99 (same-machine baselines only)")
		quiet     = flag.Bool("q", false, "suppress the human summary on stderr")
	)
	flag.Parse()
	if *version {
		fmt.Println("specbench", obs.ReadBuild().String())
		return
	}
	obs.RegisterBuildInfo(nil, "specbench")

	if *workerF {
		if err := runWorker(*listenF, *exitStdin); err != nil {
			fatal(err)
		}
		return
	}
	if *gateF {
		runStreamGate(*out, *baseline, *quiet)
		return
	}

	if *scenario != "" {
		if _, err := synth.ScenarioByName(*scenario); err != nil {
			fatal(err)
		}
	}

	// The wire job carries the flag-level workload selection; both this
	// process and any worker resolve it through jobSpec.config, so a
	// distributed merge can only ever be compared against the identical
	// single-process configuration.
	spec := jobSpec{
		Schema:        jobSchema,
		Short:         *short,
		Profile:       *profile,
		Days:          *days,
		Sessions:      *sess,
		Seed:          *seed,
		Scenario:      *scenario,
		Workers:       *workers,
		Warmup:        *warmup,
		Mode:          *mode,
		MaxPush:       *maxPush,
		Cooperative:   *coop,
		Prefetch:      *pref,
		SessionGap:    *session,
		Reps:          *reps,
		Think:         *think,
		ThinkJitter:   *jitter,
		Rate:          *rate,
		Burst:         *burst,
		Overload:      *overloadF,
		Stream:        *streamF,
		Timeout:       *timeout,
		Retries:       *retries,
		Chaos:         *chaos,
		FaultSeed:     *faultSeed,
		FaultErr:      *faultErr,
		Fault5xx:      *fault5xx,
		Fault5xxBurst: *fault5xxBurst,
		FaultLatency:  *faultLatency,
		FaultJitter:   *faultJitter,
		FaultTruncate: *faultTruncate,
		WithBaseline:  !*noBase,
	}
	cfg, err := spec.config()
	if err != nil {
		fatal(err)
	}
	// Single-process-only knobs: the shard protocol excludes them (they
	// hold per-process state that cannot merge), so they ride on the
	// config after the wire-safe part is built.
	cfg.BaseURL = *server
	cfg.RealClock = *realclock
	cfg.Estguard = *estguardF
	cfg.MaxRows = *maxRows
	cfg.RowTopK = *rowTopK

	if *spawnN > 0 || *coordF != "" {
		if *server != "" || *realclock || *estguardF || *maxRows > 0 || *rowTopK > 0 || *restartF || *suite {
			fatal(fmt.Errorf("distributed runs exclude -server, -realclock, -estguard, -max-rows, -row-topk, -restart, and -scenario-suite"))
		}
		var addrs []string
		if *spawnN > 0 {
			spawned, stop, err := spawnWorkers(*spawnN)
			if err != nil {
				fatal(err)
			}
			defer stop()
			addrs = append(addrs, spawned...)
		}
		if *coordF != "" {
			addrs = append(addrs, strings.Split(*coordF, ",")...)
		}
		runCoordinator(spec, addrs, *verifyS, *out, *baseline, *tolerance, *latSlack, *absolute, *quiet)
		return
	}

	if *suite {
		runScenarioSuite(cfg, *out, *baseline, *tolerance, *quiet)
		return
	}
	if *restartF {
		cfg.Restart = &loadgen.RestartConfig{Mode: loadgen.RestartWarm, CrashFraction: *crashFrac}
		runRestartSuite(cfg, *out, *baseline, *tolerance, *quiet)
		return
	}

	start := time.Now()
	rep, err := loadgen.RunReport(cfg, !*noBase)
	if err != nil {
		fatal(err)
	}

	data, err := rep.JSON()
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}

	if !*quiet {
		summarize(rep, time.Since(start))
	}

	if *baseline != "" {
		base, err := readReport(*baseline)
		if err != nil {
			fatal(err)
		}
		violations := loadgen.Compare(base, rep, loadgen.CompareOptions{
			TolerancePct:   *tolerance,
			LatencySlackMS: *latSlack,
			Absolute:       *absolute,
		})
		if len(violations) > 0 {
			fmt.Fprintf(os.Stderr, "specbench: regression gate FAILED against %s:\n", *baseline)
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "  - %s\n", v)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "specbench: regression gate passed against %s (tolerance %.0f%%)\n",
			*baseline, *tolerance)
	}
}

func scenarioNames() string {
	names := synth.ScenarioNames()
	return strings.Join(names[1:], ", ")
}

// runScenarioSuite executes the adversarial scenario suite, writes the
// BENCH-scenarios.json report, enforces the structural invariants
// (guarded crawler interception strictly beats unguarded; per-scenario
// degradation bounds vs clean), and optionally gates the deterministic
// metrics against a committed baseline suite.
func runScenarioSuite(cfg loadgen.Config, out, baseline string, tolerance float64, quiet bool) {
	start := time.Now()
	rep, err := loadgen.RunScenarioSuite(cfg)
	if err != nil {
		fatal(err)
	}

	data, err := rep.JSON()
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if out == "-" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(out, data, 0o644); err != nil {
		fatal(err)
	}

	if !quiet {
		fmt.Fprintf(os.Stderr, "specbench: scenario suite, %d arms, took %v\n",
			len(rep.Arms), time.Since(start).Round(time.Millisecond))
		for _, arm := range rep.Arms {
			q := int64(0)
			if arm.Guard != nil {
				q = arm.Guard.QuarantinedClients
			}
			fmt.Fprintf(os.Stderr,
				"  %-18s interception %.4f  wasted %.4f  bandwidth %.3f  p99 %7.3fms  quarantined %d\n",
				arm.Name, arm.Interception, arm.WastedFraction, arm.Ratios.Bandwidth, arm.P99MS, q)
		}
	}

	violations := loadgen.CheckScenarioInvariants(rep)
	if baseline != "" {
		bd, err := os.ReadFile(baseline)
		if err != nil {
			fatal(err)
		}
		var base loadgen.ScenarioReport
		if err := json.Unmarshal(bd, &base); err != nil {
			fatal(fmt.Errorf("parsing %s: %w", baseline, err))
		}
		violations = append(violations, loadgen.CompareScenarios(&base, rep, tolerance)...)
	}
	if len(violations) > 0 {
		fmt.Fprintln(os.Stderr, "specbench: scenario gate FAILED:")
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "  - %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "specbench: scenario gate passed")
}

// runRestartSuite executes the kill/restart chaos suite, writes the
// BENCH-restart.json report, enforces the durability invariants (warm
// recovery within slack of the uninterrupted control, warm strictly
// beats cold, corrupt frames fall back to last-good, zero dropped
// demand), and optionally gates against a committed baseline suite.
func runRestartSuite(cfg loadgen.Config, out, baseline string, tolerance float64, quiet bool) {
	start := time.Now()
	rep, err := loadgen.RunRestartSuite(cfg)
	if err != nil {
		fatal(err)
	}

	data, err := rep.JSON()
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if out == "-" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(out, data, 0o644); err != nil {
		fatal(err)
	}

	if !quiet {
		fmt.Fprintf(os.Stderr, "specbench: restart suite took %v\n",
			time.Since(start).Round(time.Millisecond))
		arm := func(name string, r *loadgen.Result) {
			if r == nil || r.Restart == nil {
				return
			}
			ri := r.Restart
			line := fmt.Sprintf("  %-16s interception p1 %.4f  p2 %.4f", name,
				ri.Phase1.Interception, ri.Phase2.Interception)
			if r.Checkpoint != nil {
				ck := r.Checkpoint
				line += fmt.Sprintf("  ckpt saved %d loaded %d corrupt-skipped %d cold-starts %d",
					ck.Saved, ck.Loaded, ck.CorruptSkipped, ck.ColdStarts)
			}
			fmt.Fprintln(os.Stderr, line)
		}
		arm("uninterrupted", rep.Uninterrupted)
		arm("warm", rep.Warm)
		arm("cold", rep.Cold)
		arm("corrupt-fallback", rep.CorruptFallback)
	}

	violations := loadgen.CheckRestartInvariants(rep)
	if baseline != "" {
		bd, err := os.ReadFile(baseline)
		if err != nil {
			fatal(err)
		}
		var base loadgen.RestartReport
		if err := json.Unmarshal(bd, &base); err != nil {
			fatal(fmt.Errorf("parsing %s: %w", baseline, err))
		}
		violations = append(violations, loadgen.CompareRestart(&base, rep, tolerance)...)
	}
	if len(violations) > 0 {
		fmt.Fprintln(os.Stderr, "specbench: restart gate FAILED:")
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "  - %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "specbench: restart gate passed")
}

func readReport(path string) (*loadgen.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep loadgen.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("specbench: parsing %s: %w", path, err)
	}
	return &rep, nil
}

func summarize(rep *loadgen.Report, took time.Duration) {
	w := rep.Workload
	fmt.Fprintf(os.Stderr, "specbench: %s site, %d clients, %d measured requests (%d warmup), took %v\n",
		rep.Config.Profile, w.Clients, w.Measured, w.Warmup, took.Round(time.Millisecond))
	arm := func(name string, r *loadgen.Result) {
		if r == nil {
			return
		}
		t := r.Timing
		fmt.Fprintf(os.Stderr,
			"  %-8s %8.0f req/s  p50 %7.3fms  p99 %7.3fms  p999 %7.3fms  errors %d  shed %d\n",
			name, t.Throughput, t.Latency.P50, t.Latency.P99, t.Latency.P999,
			r.Counts.Errors, r.Counts.Shed)
	}
	arm("spec", rep.Spec)
	arm("baseline", rep.Baseline)
	if r := rep.Spec; r != nil {
		fmt.Fprintf(os.Stderr,
			"  ratios   bandwidth %.3f  server_load %.3f  service_time %.3f  byte_miss_rate %.3f\n",
			r.Ratios.Bandwidth, r.Ratios.ServerLoad, r.Timing.ServiceTime, r.Ratios.ByteMissRate)
	}
	if rel := rep.Relative; rel != nil {
		fmt.Fprintf(os.Stderr, "  relative p99 %.3fx  throughput %.3fx (spec vs no-spec)\n",
			rel.P99Ratio, rel.ThroughputRatio)
	}
	if r := rep.Spec; r != nil && r.Attrib != nil {
		at := r.Attrib
		fmt.Fprintf(os.Stderr,
			"  attrib   delivered %s  consumed %s  wasted %s (%d docs tracked)\n",
			experiments.FmtBytes(at.Totals.DeliveredBytes),
			experiments.FmtBytes(at.Totals.ConsumedBytes),
			experiments.FmtBytes(at.Totals.WastedBytes), at.TrackedDocs)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "specbench:", err)
	os.Exit(1)
}
