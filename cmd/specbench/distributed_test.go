package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"specweb/internal/loadgen"
)

// tinyJob is a fast distributed work order over the tiny site.
func tinyJob(stream bool) jobSpec {
	return jobSpec{
		Schema:       jobSchema,
		Profile:      "tiny",
		Days:         2,
		Sessions:     30,
		Seed:         7,
		Workers:      3,
		Warmup:       0.3,
		Mode:         "push",
		MaxPush:      8,
		Prefetch:     0.25,
		SessionGap:   50,
		Reps:         1,
		Overload:     true,
		Stream:       stream,
		WithBaseline: true,
	}
}

// TestJobSpecWireRoundTrip: the job survives JSON intact and rebuilds the
// identical loadgen config on the far side — the property the merge-time
// config-identity check depends on.
func TestJobSpecWireRoundTrip(t *testing.T) {
	job := tinyJob(true)
	data, err := json.Marshal(job)
	if err != nil {
		t.Fatal(err)
	}
	var back jobSpec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(job, back) {
		t.Fatalf("job changed over the wire:\nsent %+v\ngot  %+v", job, back)
	}
	a, err := job.config()
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.config()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("decoded job built a different config")
	}
}

// TestCoordinatorWorkersByteIdentity is the distributed smoke: a
// coordinator sharding across two in-process workers must merge to the
// byte-identical deterministic report of a single-process run — for both
// the materialized and the streamed drive, with the baseline arm and
// overload control on.
func TestCoordinatorWorkersByteIdentity(t *testing.T) {
	for _, stream := range []bool{false, true} {
		t.Run(map[bool]string{false: "materialized", true: "streamed"}[stream], func(t *testing.T) {
			mux := workerMux(nil)
			w1 := httptest.NewServer(mux)
			defer w1.Close()
			w2 := httptest.NewServer(mux)
			defer w2.Close()

			job := tinyJob(stream)
			rep, err := coordinate(job, []string{w1.URL, w2.URL}, w1.Client())
			if err != nil {
				t.Fatal(err)
			}
			got, err := rep.DeterministicJSON()
			if err != nil {
				t.Fatal(err)
			}

			cfg, err := job.config()
			if err != nil {
				t.Fatal(err)
			}
			single, err := loadgen.RunReport(cfg, true)
			if err != nil {
				t.Fatal(err)
			}
			want, err := single.DeterministicJSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("distributed merge diverged from single-process run:\n%s\n--- vs ---\n%s", got, want)
			}
		})
	}
}

// TestWorkerRejectsBadJobs: schema skew and invalid configs come back as
// 4xx with a reason, never a half-run partial.
func TestWorkerRejectsBadJobs(t *testing.T) {
	srv := httptest.NewServer(workerMux(nil))
	defer srv.Close()

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := srv.Client().Post(srv.URL+"/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := post(`{"schema":"specbench-job/999"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("schema skew: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	bad := tinyJob(false)
	bad.Mode = "telepathy"
	data, _ := json.Marshal(bad)
	resp = post(string(data))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad mode: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	if resp, err := srv.Client().Get(srv.URL + "/run"); err == nil {
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /run: status %d, want 405", resp.StatusCode)
		}
		resp.Body.Close()
	}

	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("healthz failed: %v %v", err, resp)
	}
	if resp != nil {
		resp.Body.Close()
	}
}
