// Command replay drives a recorded (or synthesized) trace against a live
// speculative HTTP server and reports what speculation bought over the
// wire: start `specd` in one terminal, then
//
//	tracegen -profile department -days 3 -rate 50 -o trace.log
//	replay -trace trace.log -server http://localhost:8095 -bundles -cooperative
//
// When -trace is omitted, a small trace is synthesized in-process against
// the same profile the default specd serves, so the two-command demo works
// with no files at all. (Page paths are deterministic per profile; a few
// object paths may 404 because the object population depends on the
// generator stream — replay a tracegen file for an exact match.)
//
// With -json the run emits a structured summary — the paper's four
// speculative/non-speculative ratios (bandwidth, server load, service
// time, byte miss rate; Figs. 5–6) plus latency percentiles — so runs are
// machine-comparable across configurations.
//
// With -chaos the replay injects deterministic faults into its own
// transport (connection errors, 5xx bursts, truncated bodies, latency —
// the -fault-* flags), retries demand fetches with capped jittered
// backoff, and reports an availability section: the fraction of replayed
// requests ultimately answered despite the faults, plus retry and
// stale-serve counts. Example:
//
//	replay -chaos -fault-error-rate 0.2 -json
//
// With -rate the replay switches from its default closed loop (each
// request waits for the previous answer) to open-loop arrival: requests
// are dispatched at the given rate in groups of -burst whether or not the
// server keeps up — the regime where overload control matters. Open-loop
// runs add an overload section (shed counts per class, demand p99, the
// degradation-ladder rung reached) scraped from the server's /spec/stats.
// Note: -rate used to mean sessions/day for the synthesized trace; that
// knob is now -sessions.
//
//	replay -rate 400 -burst 8 -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"specweb/internal/attrib"
	"specweb/internal/experiments"
	"specweb/internal/httpspec"
	"specweb/internal/resilience"
	"specweb/internal/resilience/faults"
	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

func main() {
	var (
		traceFile = flag.String("trace", "", "CLF trace file (empty: synthesize a small one)")
		server    = flag.String("server", "http://localhost:8095", "speculative server base URL")
		bundles   = flag.Bool("bundles", true, "accept speculative bundles")
		coop      = flag.Bool("cooperative", false, "send cache digests")
		prefetch  = flag.Float64("prefetch", 0, "follow prefetch hints at or above this probability (0 = off)")
		session   = flag.Int("session", 0, "purge each client's cache every N requests (0 = never)")
		days      = flag.Int("days", 2, "days to synthesize when no trace file is given")
		sessions  = flag.Float64("sessions", 30, "sessions/day to synthesize")
		seed      = flag.Int64("seed", 1995, "seed for the synthesized trace")
		profile   = flag.String("profile", "department", "profile for the synthesized trace: department, media, or tiny (must match the server's)")
		asJSON    = flag.Bool("json", false, "emit the run summary as JSON on stdout")

		rate    = flag.Float64("rate", 0, "open-loop arrival rate in requests/second (0 = closed loop); adds the overload summary section")
		burst   = flag.Int("burst", 1, "requests dispatched per open-loop arrival tick")
		prioLow = flag.Float64("priority-low", 0, "fraction of clients tagged Spec-Priority: low (shed first under overload)")

		attribOn = flag.Bool("attrib", false, "track speculation attribution (consumed vs wasted bytes per class) and add it to the summary")
		feedback = flag.Bool("attrib-feedback", false, "piggyback Spec-Attrib resolution tokens so the server's /debug/attrib ledger learns delivery fates")

		chaos   = flag.Bool("chaos", false, "inject faults into the replay transport and report availability")
		retries = flag.Int("retries", 4, "max attempts per demand fetch under -chaos (1 = no retries)")
		timeout = flag.Duration("timeout", 5*time.Second, "per-request timeout under -chaos (0 = none)")

		faultSeed     = flag.Int64("fault-seed", 0, "chaos: fault injection seed (0 = fixed default)")
		faultErr      = flag.Float64("fault-error-rate", 0.2, "chaos: probability a request fails with a connection error")
		fault5xx      = flag.Float64("fault-5xx-rate", 0, "chaos: probability a request draws a synthetic 500 burst")
		fault5xxBurst = flag.Int("fault-5xx-burst", 1, "chaos: consecutive 500s per 5xx draw")
		faultLatency  = flag.Duration("fault-latency", 0, "chaos: added latency per request")
		faultJitter   = flag.Duration("fault-latency-jitter", 0, "chaos: uniform extra latency in [0, jitter)")
		faultTruncate = flag.Float64("fault-truncate-rate", 0, "chaos: probability a response body is cut short")
	)
	flag.Parse()

	var tr *trace.Trace
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		var bad int
		tr, err = trace.ParseCLF(f, nil, func(string, error) { bad++ })
		if err != nil {
			fail(err)
		}
		if bad > 0 {
			fmt.Fprintf(os.Stderr, "replay: skipped %d unparseable lines\n", bad)
		}
	} else {
		cfg := experiments.DefaultWorkload()
		p, err := webgraph.ProfileByName(*profile)
		if err != nil {
			fail(err)
		}
		cfg.Profile = p
		cfg.Days = *days
		cfg.SessionsPerDay = *sessions
		cfg.Seed = *seed
		w, err := experiments.Build(cfg)
		if err != nil {
			fail(err)
		}
		tr = w.Trace
	}
	fmt.Fprintf(os.Stderr, "replay: %d requests from %d clients against %s\n",
		tr.Len(), len(tr.Clients()), *server)

	rcfg := httpspec.ReplayConfig{
		Base:               *server,
		AcceptBundles:      *bundles,
		Cooperative:        *coop,
		PrefetchThreshold:  *prefetch,
		SessionGapRequests: *session,
		Rate:               *rate,
		Burst:              *burst,
		LowPriority:        *prioLow,
		Attrib:             *attribOn,
		AttribFeedback:     *feedback,
	}
	if *rate > 0 {
		fmt.Fprintf(os.Stderr, "replay: open loop at %.1f req/s, burst %d\n", *rate, *burst)
	}
	var inj *faults.Injector
	if *chaos {
		// Chaos mode injects faults into the replay's own transport, so
		// the server under test stays pristine and the experiment needs
		// only this one process flag.
		fcfg := faults.Config{
			Seed:          *faultSeed,
			ErrorRate:     *faultErr,
			Rate5xx:       *fault5xx,
			Burst5xx:      *fault5xxBurst,
			Latency:       *faultLatency,
			LatencyJitter: *faultJitter,
			TruncateRate:  *faultTruncate,
		}
		inj = faults.New(fcfg)
		rcfg.HTTP = &http.Client{Transport: inj.Transport(nil)}
		rcfg.Chaos = true
		rcfg.RequestTimeout = *timeout
		if *retries > 1 {
			rc := resilience.DefaultRetryConfig()
			rc.MaxAttempts = *retries
			rcfg.Retry = rc
		}
		fmt.Fprintf(os.Stderr, "replay: chaos mode (error %.2f, 5xx %.2f×%d, truncate %.2f, latency %s+%s, retries %d)\n",
			*faultErr, *fault5xx, *fault5xxBurst, *faultTruncate, *faultLatency, *faultJitter, *retries)
	}

	stats, err := httpspec.Replay(tr, rcfg)
	if err != nil {
		fail(err)
	}
	sum := stats.Summary()
	if inj != nil {
		fs := inj.Stats()
		fmt.Fprintf(os.Stderr, "replay: injected faults: %d errors, %d 5xx, %d truncations, %d delays\n",
			fs.Errors, fs.Fives, fs.Truncations, fs.Delays)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			fail(err)
		}
		return
	}
	fmt.Printf("clients:     %d\n", sum.Clients)
	fmt.Printf("requests:    %d (errors %d)\n", sum.Requests, sum.Errors)
	fmt.Printf("cache hits:  %d (%.1f%%), %d manufactured by speculation\n", sum.CacheHits,
		100*float64(sum.CacheHits)/float64(max64(sum.Requests, 1)), sum.SpecHits)
	fmt.Printf("pushed:      %d speculative documents received\n", sum.Pushed)
	fmt.Printf("prefetched:  %d hint-driven fetches\n", sum.Prefetched)
	fmt.Printf("bytes in:    %s (baseline %s)\n",
		experiments.FmtBytes(sum.BytesIn), experiments.FmtBytes(sum.BaselineBytes))
	fmt.Printf("ratios vs non-speculative (Figs. 5-6):\n")
	fmt.Printf("  bandwidth:      %.3f\n", sum.Ratios.Bandwidth)
	fmt.Printf("  server load:    %.3f\n", sum.Ratios.ServerLoad)
	fmt.Printf("  service time:   %.3f\n", sum.Ratios.ServiceTime)
	fmt.Printf("  byte miss rate: %.3f\n", sum.Ratios.ByteMissRate)
	fmt.Printf("latency ms:  p50 %.2f  p90 %.2f  p99 %.2f  mean %.2f  max %.2f\n",
		sum.LatencyMS.P50, sum.LatencyMS.P90, sum.LatencyMS.P99, sum.LatencyMS.Mean, sum.LatencyMS.Max)
	if sum.Chaos != nil {
		fmt.Printf("chaos:\n")
		fmt.Printf("  availability:   %.4f\n", sum.Chaos.Availability)
		fmt.Printf("  retries:        %d\n", sum.Chaos.Retries)
		fmt.Printf("  stale serves:   %d (ratio %.4f)\n", sum.Chaos.StaleServes, sum.Chaos.StaleRatio)
		if sum.Chaos.EstimatorRefreshes > 0 {
			fmt.Printf("  est refreshes:  %d (%d early, %d snapshots rejected)\n",
				sum.Chaos.EstimatorRefreshes, sum.Chaos.EstimatorEarlyRefreshes,
				sum.Chaos.EstimatorRejectedSnapshots)
		}
		if ck := sum.Chaos.Checkpoint; ck != nil {
			fmt.Printf("  checkpoints:    %d saved, %d loaded, %d corrupt skipped, %d cold starts\n",
				ck.Saved, ck.Loaded, ck.CorruptSkipped, ck.ColdStarts)
		}
	}
	if sum.Overload != nil {
		ov := sum.Overload
		fmt.Printf("overload (offered %.1f req/s, burst %d):\n", ov.OfferedRate, ov.Burst)
		fmt.Printf("  shed:           %d demand, %d speculative (speculative ratio %.3f)\n",
			ov.DemandShed, ov.SpeculativeShed, ov.ShedSpeculativeRatio)
		fmt.Printf("  demand p99:     %.2f ms\n", ov.DemandP99MS)
		fmt.Printf("  ladder:         reached rung %d, ended %s (effective Tp %.3f)\n",
			ov.MaxRung, ov.Rung, ov.EffectiveTp)
	}
	if at := sum.Attrib; at != nil {
		fmt.Printf("attribution:\n")
		fmt.Printf("  delivered:      %d speculative documents, %s\n",
			at.Totals.Deliveries, experiments.FmtBytes(at.Totals.DeliveredBytes))
		fmt.Printf("  consumed:       %d (%s)\n",
			at.Totals.Consumed, experiments.FmtBytes(at.Totals.ConsumedBytes))
		fmt.Printf("  wasted:         %d (%s)\n",
			at.Totals.Wasted, experiments.FmtBytes(at.Totals.WastedBytes))
		for _, class := range []string{attrib.ClassPush, attrib.ClassPrefetch, attrib.ClassReplica} {
			ct, ok := at.Classes[class]
			if !ok {
				continue
			}
			fmt.Printf("  %-9s       %s delivered, %s wasted\n", class+":",
				experiments.FmtBytes(ct.DeliveredBytes), experiments.FmtBytes(ct.WastedBytes))
		}
		for i, d := range at.Docs {
			if i >= 5 {
				break
			}
			fmt.Printf("  top doc:        %s (%s delivered, %s wasted)\n", d.Doc,
				experiments.FmtBytes(d.DeliveredBytes), experiments.FmtBytes(d.WastedBytes))
		}
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "replay:", err)
	os.Exit(1)
}
