// Command figures regenerates every figure of the paper as a CSV data file,
// ready for gnuplot or any spreadsheet:
//
//	figures -o ./figures -days 90 -rate 220
//
// writes figure1.csv .. figure5.csv into the output directory (figure 6 is
// figure5.csv plotted against the traffic_pct column).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"specweb/internal/experiments"
)

func main() {
	var (
		out   = flag.String("o", "figures", "output directory")
		days  = flag.Int("days", 90, "days of traffic")
		rate  = flag.Float64("rate", 220, "mean sessions per day")
		seed  = flag.Int64("seed", 1995, "random seed")
		small = flag.Bool("small", false, "use the small test workload")
	)
	flag.Parse()

	cfg := experiments.DefaultWorkload()
	if *small {
		cfg = experiments.SmallWorkload()
	}
	cfg.Days = *days
	cfg.SessionsPerDay = *rate
	cfg.Seed = *seed
	w, err := experiments.Build(cfg)
	if err != nil {
		fail(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}

	write := func(name string, gen func(f *os.File) error) {
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			fail(err)
		}
		if err := gen(f); err != nil {
			f.Close()
			fail(fmt.Errorf("%s: %w", name, err))
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Println("wrote", path)
	}

	write("figure1.csv", func(f *os.File) error {
		res, err := experiments.Figure1(w, 256<<10)
		if err != nil {
			return err
		}
		return experiments.Figure1CSV(f, res)
	})
	write("figure2.csv", func(f *os.File) error {
		pts, err := experiments.Figure2(3, 6.247e-7, nil)
		if err != nil {
			return err
		}
		return experiments.Figure2CSV(f, pts)
	})
	write("figure3_top10.csv", func(f *os.File) error {
		curves, err := experiments.Figure3(w, []float64{0.10}, nil)
		if err != nil {
			return err
		}
		return experiments.Figure3CSV(f, curves[0])
	})
	write("figure3_top4.csv", func(f *os.File) error {
		curves, err := experiments.Figure3(w, []float64{0.04}, nil)
		if err != nil {
			return err
		}
		return experiments.Figure3CSV(f, curves[0])
	})
	write("figure4.csv", func(f *os.File) error {
		res, err := experiments.Figure4(w, 20)
		if err != nil {
			return err
		}
		return experiments.Figure4CSV(f, res)
	})
	write("figure5.csv", func(f *os.File) error {
		pts, err := experiments.Figure5(w, nil)
		if err != nil {
			return err
		}
		return experiments.Figure5CSV(f, pts)
	})
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
