// Command allocate computes the §2 storage allocations: Figure 2's optimal
// per-server proxy storage curves and equation 10's proxy sizing examples.
//
// Usage:
//
//	allocate -n 3 -lambda 6.247e-7
package main

import (
	"flag"
	"fmt"
	"os"

	"specweb/internal/experiments"
)

func main() {
	var (
		n      = flag.Int("n", 3, "cluster size for the Figure 2 curves")
		lambda = flag.Float64("lambda", 6.247e-7, "popularity constant of the n-1 identical servers")
	)
	flag.Parse()

	pts, err := experiments.Figure2(*n, *lambda, nil)
	if err != nil {
		fail(err)
	}
	fmt.Printf("== Figure 2: optimal storage B_j for server with λ_j = r·λ_i (n=%d) ==\n", *n)
	fmt.Printf("allocations in units of 1/λ_i; tight budget B0 = 1/λ_i, lax B0 = 10/λ_i\n\n")
	rows := make([][]string, 0, len(pts))
	for _, p := range pts {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", p.LambdaRatio),
			fmt.Sprintf("%.3f", p.Tight),
			fmt.Sprintf("%.3f", p.Lax),
		})
	}
	if err := experiments.Table(os.Stdout, []string{"λ_j/λ_i", "tight", "lax"}, rows); err != nil {
		fail(err)
	}

	sizing, err := experiments.Sizing(*lambda)
	if err != nil {
		fail(err)
	}
	fmt.Printf("\n== Equation 10: proxy sizing for symmetric clusters (λ = %g) ==\n\n", *lambda)
	srows := make([][]string, 0, len(sizing))
	for _, s := range sizing {
		srows = append(srows, []string{
			fmt.Sprintf("%d", s.Servers),
			fmt.Sprintf("%.0f%%", 100*s.HitFraction),
			experiments.FmtBytes(int64(s.B0)),
		})
	}
	if err := experiments.Table(os.Stdout, []string{"servers", "intercepted", "B0 needed"}, srows); err != nil {
		fail(err)
	}
	fmt.Println("\npaper: 10 servers @ 90% → ≈36MB; 100 servers @ 96% with 500MB")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "allocate:", err)
	os.Exit(1)
}
