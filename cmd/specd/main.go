// Command specd serves a synthetic site over HTTP with live speculative
// service — the prototype the paper lists as work in progress. Point a
// browser (or the httpdemo example) at it; clients that send
// "Spec-Accept: bundle" receive speculative multipart bundles, everyone
// else gets Link: rel="prefetch" hints.
//
// Usage:
//
//	specd -addr :8095 -profile department -mode hybrid
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"specweb/internal/httpspec"
	"specweb/internal/stats"
	"specweb/internal/webgraph"
)

func main() {
	var (
		addr    = flag.String("addr", ":8095", "listen address")
		profile = flag.String("profile", "department", "site profile: department, media, or tiny")
		mode    = flag.String("mode", "hybrid", "delivery mode: push, hints, or hybrid")
		seed    = flag.Int64("seed", 1995, "site generation seed")
		tp      = flag.Float64("tp", 0.25, "speculation threshold")
	)
	flag.Parse()

	var p webgraph.Profile
	switch *profile {
	case "department":
		p = webgraph.DepartmentSite()
	case "media":
		p = webgraph.MediaSite()
	case "tiny":
		p = webgraph.TinySite()
	default:
		fmt.Fprintf(os.Stderr, "specd: unknown profile %q\n", *profile)
		os.Exit(2)
	}
	site, err := webgraph.Generate(p, stats.NewRNG(*seed))
	if err != nil {
		log.Fatal("specd: ", err)
	}

	cfg := httpspec.DefaultServerConfig()
	cfg.Engine.Tp = *tp
	switch *mode {
	case "push":
		cfg.Mode = httpspec.ModePush
	case "hints":
		cfg.Mode = httpspec.ModeHints
	case "hybrid":
		cfg.Mode = httpspec.ModeHybrid
	default:
		fmt.Fprintf(os.Stderr, "specd: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	srv, err := httpspec.NewServer(httpspec.NewSiteStore(site), cfg)
	if err != nil {
		log.Fatal("specd: ", err)
	}
	log.Printf("specd: serving %d documents (%d pages) on %s, mode=%s tp=%.2f",
		site.NumDocs(), site.NumPages(), *addr, *mode, *tp)
	log.Printf("specd: try GET %s  (stats at /spec/stats)", site.Doc(site.Entries[0]).Path)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
