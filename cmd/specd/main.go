// Command specd serves a synthetic site over HTTP with live speculative
// service — the prototype the paper lists as work in progress. Point a
// browser (or the httpdemo example) at it; clients that send
// "Spec-Accept: bundle" receive speculative multipart bundles, everyone
// else gets Link: rel="prefetch" hints.
//
// Usage:
//
//	specd -addr :8095 -profile department -mode hybrid
//
// Prometheus metrics are exposed at /metrics on the main listener. With
// -obs-addr a second listener additionally serves /debug/vars (expvar),
// /debug/pprof/* and /debug/spans (recent trace spans as JSON), kept off
// the main port so profiling endpoints are never exposed to clients by
// accident.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"specweb/internal/httpspec"
	"specweb/internal/obs"
	"specweb/internal/overload"
	"specweb/internal/resilience/faults"
	"specweb/internal/stats"
	"specweb/internal/webgraph"
)

func main() {
	var (
		addr    = flag.String("addr", ":8095", "listen address")
		obsAddr = flag.String("obs-addr", "", "observability listen address for /metrics, /debug/vars, /debug/pprof and /debug/spans (empty: disabled)")
		profile = flag.String("profile", "department", "site profile: department, media, or tiny")
		mode    = flag.String("mode", "hybrid", "delivery mode: push, hints, or hybrid")
		seed    = flag.Int64("seed", 1995, "site generation seed")
		tp      = flag.Float64("tp", 0.25, "speculation threshold")

		ovEnable = flag.Bool("overload", false, "enable overload control: priority admission, the adaptive speculation governor and the degradation ladder")
		ovDemand = flag.Int("overload-demand", 256, "demand-class concurrency slots")
		ovSpec   = flag.Int("overload-spec", 64, "speculative-class concurrency slots")
		ovQueue  = flag.Int("overload-queue", 128, "admission wait-queue depth per class (negative: no queue)")
		ovWait   = flag.Duration("overload-wait", 2*time.Second, "max time a request may wait for an admission slot")
		ovTarget = flag.Duration("overload-target", 50*time.Millisecond, "demand-path latency the governor defends")

		faultSeed     = flag.Int64("fault-seed", 0, "fault injection seed (0 = fixed default)")
		faultErr      = flag.Float64("fault-error-rate", 0, "probability a request's connection is aborted mid-response")
		fault5xx      = flag.Float64("fault-5xx-rate", 0, "probability a request draws a synthetic 500 burst")
		fault5xxBurst = flag.Int("fault-5xx-burst", 1, "consecutive 500s per 5xx draw")
		faultLatency  = flag.Duration("fault-latency", 0, "added latency per request")
		faultJitter   = flag.Duration("fault-latency-jitter", 0, "uniform extra latency in [0, jitter)")
		faultTruncate = flag.Float64("fault-truncate-rate", 0, "probability a response body is cut short mid-stream")
	)
	flag.Parse()
	log := obs.Logger("specd")

	p, err := webgraph.ProfileByName(*profile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "specd:", err)
		os.Exit(2)
	}
	site, err := webgraph.Generate(p, stats.NewRNG(*seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, "specd:", err)
		os.Exit(1)
	}

	cfg := httpspec.DefaultServerConfig()
	cfg.Engine.Tp = *tp
	cfg.Mode, err = httpspec.ParseMode(*mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "specd:", err)
		os.Exit(2)
	}

	var governor *overload.Governor
	if *ovEnable {
		ctrl := overload.NewController(overload.Config{
			DemandSlots: *ovDemand,
			SpecSlots:   *ovSpec,
			QueueDepth:  *ovQueue,
			MaxWait:     *ovWait,
		})
		governor = overload.NewGovernor(overload.GovernorConfig{
			Target:   *ovTarget,
			Pressure: ctrl.Pressure,
		})
		cfg.Admission = ctrl
		cfg.Governor = governor
		log.Info("overload control enabled",
			"demand_slots", *ovDemand, "spec_slots", *ovSpec,
			"queue", *ovQueue, "max_wait", *ovWait, "target", *ovTarget)
	}

	srv, err := httpspec.NewServer(httpspec.NewSiteStore(site), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "specd:", err)
		os.Exit(1)
	}

	// With any -fault-* flag set, the site handler is wrapped in a
	// deterministic fault injector — the origin half of a chaos
	// experiment. /metrics stays outside the wrap so the injected-fault
	// counters remain scrapeable while the "site" misbehaves.
	var handler http.Handler = srv
	fcfg := faults.Config{
		Seed:          *faultSeed,
		ErrorRate:     *faultErr,
		Rate5xx:       *fault5xx,
		Burst5xx:      *fault5xxBurst,
		Latency:       *faultLatency,
		LatencyJitter: *faultJitter,
		TruncateRate:  *faultTruncate,
	}
	if fcfg.Enabled() {
		inj := faults.New(fcfg)
		handler = inj.Middleware(srv)
		log.Info("fault injection enabled",
			"error_rate", *faultErr, "rate_5xx", *fault5xx, "burst_5xx", *fault5xxBurst,
			"latency", *faultLatency, "jitter", *faultJitter, "truncate_rate", *faultTruncate,
			"seed", *faultSeed)
	}

	mux := http.NewServeMux()
	mux.Handle("/", handler)
	mux.Handle("/metrics", obs.Default.Handler())

	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: mux,
		// ReadHeaderTimeout and MaxHeaderBytes close the slowloris hole:
		// without them a client trickling header bytes holds a connection
		// (and under admission control, a precious slot) indefinitely.
		ReadHeaderTimeout: 5 * time.Second,
		MaxHeaderBytes:    64 << 10,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       60 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if governor != nil {
		// Ticking lets the ladder drain during idle periods, when no
		// demand request arrives to Observe a latency sample.
		go func() {
			t := time.NewTicker(time.Second)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					governor.Tick()
				}
			}
		}()
	}

	var obsSrv *http.Server
	if *obsAddr != "" {
		obsSrv = &http.Server{
			Addr:              *obsAddr,
			Handler:           obsMux(),
			ReadHeaderTimeout: 5 * time.Second,
			MaxHeaderBytes:    64 << 10,
			// pprof profile captures legitimately run for tens of
			// seconds, so the write timeout is generous here.
			ReadTimeout:  10 * time.Second,
			WriteTimeout: 2 * time.Minute,
			IdleTimeout:  60 * time.Second,
		}
		go func() {
			log.Info("observability listening", "addr", *obsAddr)
			if err := obsSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Error("observability server failed", "err", err)
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() {
		log.Info("serving site",
			"docs", site.NumDocs(), "pages", site.NumPages(),
			"addr", *addr, "mode", *mode, "tp", *tp,
			"entry", site.Doc(site.Entries[0]).Path)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		log.Info("shutting down", "reason", "signal")
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "specd:", err)
			os.Exit(1)
		}
		return
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Error("shutdown incomplete", "err", err)
	}
	if obsSrv != nil {
		_ = obsSrv.Shutdown(shutdownCtx)
	}
	log.Info("bye")
}

// obsMux assembles the observability endpoints: Prometheus metrics,
// expvar, pprof and the span ring.
func obsMux() *http.ServeMux {
	m := http.NewServeMux()
	m.Handle("/metrics", obs.Default.Handler())
	m.Handle("/debug/vars", expvar.Handler())
	m.Handle("/debug/spans", obs.DefaultTracer.Handler())
	m.HandleFunc("/debug/pprof/", pprof.Index)
	m.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	m.HandleFunc("/debug/pprof/profile", pprof.Profile)
	m.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	m.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return m
}
