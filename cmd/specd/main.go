// Command specd serves a synthetic site over HTTP with live speculative
// service — the prototype the paper lists as work in progress. Point a
// browser (or the httpdemo example) at it; clients that send
// "Spec-Accept: bundle" receive speculative multipart bundles, everyone
// else gets Link: rel="prefetch" hints.
//
// Usage:
//
//	specd -addr :8095 -profile department -mode hybrid
//
// Prometheus metrics are exposed at /metrics on the main listener. With
// -obs-addr a second listener additionally serves /debug/vars (expvar),
// /debug/pprof/*, /debug/spans (recent trace spans as JSON) and
// /debug/attrib (the speculation attribution ledger: consumed vs wasted
// bytes per delivery class and per document), kept off the main port so
// profiling endpoints are never exposed to clients by accident.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"specweb/internal/attrib"
	"specweb/internal/httpspec"
	"specweb/internal/obs"
	"specweb/internal/overload"
	"specweb/internal/resilience/faults"
	"specweb/internal/stats"
	"specweb/internal/webgraph"
)

func main() {
	var (
		addr    = flag.String("addr", ":8095", "listen address")
		obsAddr = flag.String("obs-addr", "", "observability listen address for /metrics, /debug/vars, /debug/pprof, /debug/spans and /debug/attrib (empty: disabled)")
		profile = flag.String("profile", "department", "site profile: department, media, or tiny")
		mode    = flag.String("mode", "hybrid", "delivery mode: push, hints, or hybrid")
		seed    = flag.Int64("seed", 1995, "site generation seed")
		tp      = flag.Float64("tp", 0.25, "speculation threshold")
		version = flag.Bool("version", false, "print build information and exit")

		ovEnable = flag.Bool("overload", false, "enable overload control: priority admission, the adaptive speculation governor and the degradation ladder")
		ovDemand = flag.Int("overload-demand", 256, "demand-class concurrency slots")
		ovSpec   = flag.Int("overload-spec", 64, "speculative-class concurrency slots")
		ovQueue  = flag.Int("overload-queue", 128, "admission wait-queue depth per class (negative: no queue)")
		ovWait   = flag.Duration("overload-wait", 2*time.Second, "max time a request may wait for an admission slot")
		ovTarget = flag.Duration("overload-target", 50*time.Millisecond, "demand-path latency the governor defends")

		faultSeed     = flag.Int64("fault-seed", 0, "fault injection seed (0 = fixed default)")
		faultErr      = flag.Float64("fault-error-rate", 0, "probability a request's connection is aborted mid-response")
		fault5xx      = flag.Float64("fault-5xx-rate", 0, "probability a request draws a synthetic 500 burst")
		fault5xxBurst = flag.Int("fault-5xx-burst", 1, "consecutive 500s per 5xx draw")
		faultLatency  = flag.Duration("fault-latency", 0, "added latency per request")
		faultJitter   = flag.Duration("fault-latency-jitter", 0, "uniform extra latency in [0, jitter)")
		faultTruncate = flag.Float64("fault-truncate-rate", 0, "probability a response body is cut short mid-stream")
	)
	flag.Parse()
	if *version {
		fmt.Println("specd", obs.ReadBuild().String())
		return
	}
	log := obs.Logger("specd")
	build := obs.RegisterBuildInfo(nil, "specd")

	p, err := webgraph.ProfileByName(*profile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "specd:", err)
		os.Exit(2)
	}
	site, err := webgraph.Generate(p, stats.NewRNG(*seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, "specd:", err)
		os.Exit(1)
	}

	cfg := httpspec.DefaultServerConfig()
	cfg.Engine.Tp = *tp
	cfg.Mode, err = httpspec.ParseMode(*mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "specd:", err)
		os.Exit(2)
	}

	// The attribution ledger outlives any single request: sized past the
	// site so per-doc rows stay exact, fed by the server's own push
	// records and the clients' Spec-Attrib feedback.
	led := attrib.NewLedger(2*site.NumDocs(), nil)
	cfg.Attrib = led

	var governor *overload.Governor
	if *ovEnable {
		ctrl := overload.NewController(overload.Config{
			DemandSlots: *ovDemand,
			SpecSlots:   *ovSpec,
			QueueDepth:  *ovQueue,
			MaxWait:     *ovWait,
		})
		governor = overload.NewGovernor(overload.GovernorConfig{
			Target:   *ovTarget,
			Pressure: ctrl.Pressure,
		})
		cfg.Admission = ctrl
		cfg.Governor = governor
		log.Info("overload control enabled",
			"demand_slots", *ovDemand, "spec_slots", *ovSpec,
			"queue", *ovQueue, "max_wait", *ovWait, "target", *ovTarget)
	}

	srv, err := httpspec.NewServer(httpspec.NewSiteStore(site), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "specd:", err)
		os.Exit(1)
	}

	// With any -fault-* flag set, the site handler is wrapped in a
	// deterministic fault injector — the origin half of a chaos
	// experiment. /metrics stays outside the wrap so the injected-fault
	// counters remain scrapeable while the "site" misbehaves.
	var handler http.Handler = srv
	fcfg := faults.Config{
		Seed:          *faultSeed,
		ErrorRate:     *faultErr,
		Rate5xx:       *fault5xx,
		Burst5xx:      *fault5xxBurst,
		Latency:       *faultLatency,
		LatencyJitter: *faultJitter,
		TruncateRate:  *faultTruncate,
	}
	if fcfg.Enabled() {
		inj := faults.New(fcfg)
		handler = inj.Middleware(srv)
		log.Info("fault injection enabled",
			"error_rate", *faultErr, "rate_5xx", *fault5xx, "burst_5xx", *fault5xxBurst,
			"latency", *faultLatency, "jitter", *faultJitter, "truncate_rate", *faultTruncate,
			"seed", *faultSeed)
	}

	mux := http.NewServeMux()
	mux.Handle("/", handler)
	mux.Handle("/metrics", obs.Default.Handler())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Info("serving site",
		"docs", site.NumDocs(), "pages", site.NumPages(),
		"addr", *addr, "mode", *mode, "tp", *tp,
		"version", build.Version, "revision", build.Revision,
		"entry", site.Doc(site.Entries[0]).Path)
	err = serve(ctx, serveOpts{
		addr:     *addr,
		obsAddr:  *obsAddr,
		handler:  mux,
		obsMux:   obsMux(led),
		governor: governor,
		log:      log,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "specd:", err)
		os.Exit(1)
	}
	log.Info("bye")
}

// serveOpts parameterizes the serve loop, split from main so tests can
// run the whole lifecycle — bind, serve, signal, graceful stop — against
// ephemeral ports.
type serveOpts struct {
	addr    string
	obsAddr string // empty: no observability listener
	handler http.Handler
	obsMux  http.Handler
	// governor, when non-nil, is ticked every second so the degradation
	// ladder drains during idle periods.
	governor *overload.Governor
	log      *slog.Logger
	// ready, when non-nil, receives the bound listener addresses (the
	// obs address is nil when disabled) before serving begins.
	ready func(main, obs net.Addr)
	// shutdownTimeout bounds the graceful drain (default 10s).
	shutdownTimeout time.Duration
}

// serve binds the main (and optional observability) listener, serves
// until ctx is cancelled or a listener fails, then shuts both down
// gracefully. It returns nil on a clean signal-driven stop.
func serve(ctx context.Context, o serveOpts) error {
	if o.shutdownTimeout <= 0 {
		o.shutdownTimeout = 10 * time.Second
	}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler: o.handler,
		// ReadHeaderTimeout and MaxHeaderBytes close the slowloris hole:
		// without them a client trickling header bytes holds a connection
		// (and under admission control, a precious slot) indefinitely.
		ReadHeaderTimeout: 5 * time.Second,
		MaxHeaderBytes:    64 << 10,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       60 * time.Second,
	}

	var obsLn net.Listener
	var obsSrv *http.Server
	if o.obsAddr != "" {
		obsLn, err = net.Listen("tcp", o.obsAddr)
		if err != nil {
			ln.Close()
			return err
		}
		obsSrv = &http.Server{
			Handler:           o.obsMux,
			ReadHeaderTimeout: 5 * time.Second,
			MaxHeaderBytes:    64 << 10,
			// pprof profile captures legitimately run for tens of
			// seconds, so the write timeout is generous here.
			ReadTimeout:  10 * time.Second,
			WriteTimeout: 2 * time.Minute,
			IdleTimeout:  60 * time.Second,
		}
	}
	if o.ready != nil {
		var oa net.Addr
		if obsLn != nil {
			oa = obsLn.Addr()
		}
		o.ready(ln.Addr(), oa)
	}

	// Everything spawned below is cancelled on return, so a listener
	// failure cannot strand the ticker or the sibling server.
	tctx, tcancel := context.WithCancel(ctx)
	defer tcancel()
	if o.governor != nil {
		go func() {
			t := time.NewTicker(time.Second)
			defer t.Stop()
			for {
				select {
				case <-tctx.Done():
					return
				case <-t.C:
					o.governor.Tick()
				}
			}
		}()
	}

	servers := 1
	errCh := make(chan error, 2)
	go func() { errCh <- httpSrv.Serve(ln) }()
	if obsSrv != nil {
		servers++
		o.log.Info("observability listening", "addr", obsLn.Addr())
		go func() { errCh <- obsSrv.Serve(obsLn) }()
	}

	var serveErr error
	running := servers
	select {
	case <-ctx.Done():
		o.log.Info("shutting down", "reason", "signal")
	case err := <-errCh:
		running--
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			serveErr = err
		}
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), o.shutdownTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		o.log.Error("shutdown incomplete", "err", err)
	}
	if obsSrv != nil {
		_ = obsSrv.Shutdown(shutdownCtx)
	}
	// Reap the Serve goroutines so a graceful stop leaves nothing behind.
	for ; running > 0; running-- {
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) && serveErr == nil {
			serveErr = err
		}
	}
	return serveErr
}

// obsMux assembles the observability endpoints: Prometheus metrics,
// expvar, pprof, the span ring, and the attribution ledger.
func obsMux(led *attrib.Ledger) *http.ServeMux {
	m := http.NewServeMux()
	m.Handle("/metrics", obs.Default.Handler())
	m.Handle("/debug/vars", expvar.Handler())
	m.Handle("/debug/spans", obs.DefaultTracer.Handler())
	m.Handle("/debug/attrib", led.Handler())
	m.HandleFunc("/debug/pprof/", pprof.Index)
	m.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	m.HandleFunc("/debug/pprof/profile", pprof.Profile)
	m.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	m.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return m
}
