// Command specd serves a synthetic site over HTTP with live speculative
// service — the prototype the paper lists as work in progress. Point a
// browser (or the httpdemo example) at it; clients that send
// "Spec-Accept: bundle" receive speculative multipart bundles, everyone
// else gets Link: rel="prefetch" hints.
//
// Usage:
//
//	specd -addr :8095 -profile department -mode hybrid
//
// Prometheus metrics are exposed at /metrics on the main listener. With
// -obs-addr a second listener additionally serves /debug/vars (expvar),
// /debug/pprof/*, /debug/spans (recent trace spans as JSON) and
// /debug/attrib (the speculation attribution ledger: consumed vs wasted
// bytes per delivery class and per document), kept off the main port so
// profiling endpoints are never exposed to clients by accident.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"specweb/internal/attrib"
	"specweb/internal/checkpoint"
	"specweb/internal/core"
	"specweb/internal/httpspec"
	"specweb/internal/obs"
	"specweb/internal/overload"
	"specweb/internal/resilience/faults"
	"specweb/internal/stats"
	"specweb/internal/webgraph"
)

func main() {
	var (
		addr    = flag.String("addr", ":8095", "listen address")
		obsAddr = flag.String("obs-addr", "", "observability listen address for /metrics, /debug/vars, /debug/pprof, /debug/spans and /debug/attrib (empty: disabled)")
		profile = flag.String("profile", "department", "site profile: department, media, or tiny")
		mode    = flag.String("mode", "hybrid", "delivery mode: push, hints, or hybrid")
		seed    = flag.Int64("seed", 1995, "site generation seed")
		tp      = flag.Float64("tp", 0.25, "speculation threshold")
		version = flag.Bool("version", false, "print build information and exit")

		refresh = flag.Duration("refresh-every", 0, "override the engine's estimate refresh cadence (0: engine default)")

		maxRows = flag.Int("max-rows", 0, "bound the dependency estimator to this many tracked documents (0 with -row-topk 0: exact estimation)")
		rowTopK = flag.Int("row-topk", 0, "bound each estimator row to its top K successors, space-saving style (0 with -max-rows 0: exact estimation)")

		stateDir   = flag.String("state-dir", "", "durable checkpoint directory for crash-safe warm restart (empty: stateless)")
		ckptEvery  = flag.Duration("checkpoint-interval", 0, "additionally checkpoint on this wall-clock interval (0: only on freeze, SIGHUP and shutdown)")
		ckptRetain = flag.Int("checkpoint-retain", 3, "checkpoint frames kept in -state-dir")

		ovEnable = flag.Bool("overload", false, "enable overload control: priority admission, the adaptive speculation governor and the degradation ladder")
		ovDemand = flag.Int("overload-demand", 256, "demand-class concurrency slots")
		ovSpec   = flag.Int("overload-spec", 64, "speculative-class concurrency slots")
		ovQueue  = flag.Int("overload-queue", 128, "admission wait-queue depth per class (negative: no queue)")
		ovWait   = flag.Duration("overload-wait", 2*time.Second, "max time a request may wait for an admission slot")
		ovTarget = flag.Duration("overload-target", 50*time.Millisecond, "demand-path latency the governor defends")

		faultSeed     = flag.Int64("fault-seed", 0, "fault injection seed (0 = fixed default)")
		faultErr      = flag.Float64("fault-error-rate", 0, "probability a request's connection is aborted mid-response")
		fault5xx      = flag.Float64("fault-5xx-rate", 0, "probability a request draws a synthetic 500 burst")
		fault5xxBurst = flag.Int("fault-5xx-burst", 1, "consecutive 500s per 5xx draw")
		faultLatency  = flag.Duration("fault-latency", 0, "added latency per request")
		faultJitter   = flag.Duration("fault-latency-jitter", 0, "uniform extra latency in [0, jitter)")
		faultTruncate = flag.Float64("fault-truncate-rate", 0, "probability a response body is cut short mid-stream")
	)
	flag.Parse()
	if *version {
		fmt.Println("specd", obs.ReadBuild().String())
		return
	}
	log := obs.Logger("specd")
	build := obs.RegisterBuildInfo(nil, "specd")

	p, err := webgraph.ProfileByName(*profile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "specd:", err)
		os.Exit(2)
	}
	site, err := webgraph.Generate(p, stats.NewRNG(*seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, "specd:", err)
		os.Exit(1)
	}

	cfg := httpspec.DefaultServerConfig()
	cfg.Engine.Tp = *tp
	if *refresh > 0 {
		cfg.Engine.RefreshEvery = *refresh
	}
	if *maxRows < 0 || *rowTopK < 0 {
		fmt.Fprintln(os.Stderr, "specd: -max-rows and -row-topk must be non-negative")
		os.Exit(2)
	}
	if *maxRows > 0 || *rowTopK > 0 {
		cfg.Engine.MaxRows = *maxRows
		cfg.Engine.RowTopK = *rowTopK
		log.Info("bounded estimation enabled", "max_rows", *maxRows, "row_topk", *rowTopK)
	}
	cfg.Mode, err = httpspec.ParseMode(*mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "specd:", err)
		os.Exit(2)
	}

	// The attribution ledger outlives any single request: sized past the
	// site so per-doc rows stay exact, fed by the server's own push
	// records and the clients' Spec-Attrib feedback.
	led := attrib.NewLedger(2*site.NumDocs(), nil)
	cfg.Attrib = led

	var governor *overload.Governor
	if *ovEnable {
		ctrl := overload.NewController(overload.Config{
			DemandSlots: *ovDemand,
			SpecSlots:   *ovSpec,
			QueueDepth:  *ovQueue,
			MaxWait:     *ovWait,
		})
		governor = overload.NewGovernor(overload.GovernorConfig{
			Target:   *ovTarget,
			Pressure: ctrl.Pressure,
		})
		cfg.Admission = ctrl
		cfg.Governor = governor
		log.Info("overload control enabled",
			"demand_slots", *ovDemand, "spec_slots", *ovSpec,
			"queue", *ovQueue, "max_wait", *ovWait, "target", *ovTarget)
	}

	// Crash-safe state: the store's fingerprint binds frames to both the
	// engine's estimation parameters and the site identity, so a frame
	// from a different -seed or -profile (whose DocIDs mean different
	// documents) can never warm-start this process.
	var store *checkpoint.Store
	if *stateDir != "" {
		fp := checkpoint.Combine(cfg.Engine.StateFingerprint(),
			checkpoint.Fingerprint(fmt.Sprintf("site/v1|profile=%s|seed=%d", *profile, *seed)))
		store, err = checkpoint.NewStore(checkpoint.StoreConfig{
			Dir:         *stateDir,
			Retain:      *ckptRetain,
			Fingerprint: fp,
			Tracer:      obs.DefaultTracer,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "specd:", err)
			os.Exit(1)
		}
		cfg.Engine.Checkpoint = store
		log.Info("checkpointing enabled", "dir", *stateDir,
			"retain", *ckptRetain, "interval", *ckptEvery,
			"fingerprint", fmt.Sprintf("%016x", fp))
	}

	srv, err := httpspec.NewServer(httpspec.NewSiteStore(site), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "specd:", err)
		os.Exit(1)
	}

	// With any -fault-* flag set, the site handler is wrapped in a
	// deterministic fault injector — the origin half of a chaos
	// experiment. /metrics stays outside the wrap so the injected-fault
	// counters remain scrapeable while the "site" misbehaves.
	var handler http.Handler = srv
	fcfg := faults.Config{
		Seed:          *faultSeed,
		ErrorRate:     *faultErr,
		Rate5xx:       *fault5xx,
		Burst5xx:      *fault5xxBurst,
		Latency:       *faultLatency,
		LatencyJitter: *faultJitter,
		TruncateRate:  *faultTruncate,
	}
	if fcfg.Enabled() {
		inj := faults.New(fcfg)
		handler = inj.Middleware(srv)
		log.Info("fault injection enabled",
			"error_rate", *faultErr, "rate_5xx", *fault5xx, "burst_5xx", *fault5xxBurst,
			"latency", *faultLatency, "jitter", *faultJitter, "truncate_rate", *faultTruncate,
			"seed", *faultSeed)
	}

	mux := http.NewServeMux()
	mux.Handle("/", handler)
	mux.Handle("/metrics", obs.Default.Handler())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Info("serving site",
		"docs", site.NumDocs(), "pages", site.NumPages(),
		"addr", *addr, "mode", *mode, "tp", *tp,
		"version", build.Version, "revision", build.Revision,
		"entry", site.Doc(site.Entries[0]).Path)
	opts := serveOpts{
		addr:     *addr,
		obsAddr:  *obsAddr,
		handler:  mux,
		obsMux:   obsMux(led),
		governor: governor,
		log:      log,
	}
	if store != nil {
		eng := srv.Engine()
		opts.warmStart = func() error { return recoverState(eng, store, log) }
		opts.checkpointNow = func() error { return eng.CheckpointNow(time.Now()) }
		opts.checkpointInterval = *ckptEvery
		opts.finalCheckpoint = func() error { return eng.CheckpointNow(time.Now()) }
	}
	err = serve(ctx, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "specd:", err)
		os.Exit(1)
	}
	log.Info("bye")
}

// serveOpts parameterizes the serve loop, split from main so tests can
// run the whole lifecycle — bind, serve, signal, graceful stop — against
// ephemeral ports.
type serveOpts struct {
	addr    string
	obsAddr string // empty: no observability listener
	handler http.Handler
	obsMux  http.Handler
	// governor, when non-nil, is ticked every second so the degradation
	// ladder drains during idle periods.
	governor *overload.Governor
	log      *slog.Logger
	// ready, when non-nil, receives the bound listener addresses (the
	// obs address is nil when disabled) before serving begins.
	ready func(main, obs net.Addr)
	// shutdownTimeout bounds the graceful drain (default 10s).
	shutdownTimeout time.Duration
	// warmStart, when non-nil, runs state recovery BEFORE the listeners
	// bind: this ordering is the readiness gate — no request can be
	// admitted until the engine either warm-started or decided to start
	// cold, so clients never observe a half-initialized engine.
	warmStart func() error
	// checkpointNow, when non-nil, enables the SIGHUP "checkpoint now"
	// handler and (with checkpointInterval > 0) a periodic checkpoint.
	checkpointNow      func() error
	checkpointInterval time.Duration
	// finalCheckpoint, when non-nil, runs exactly once on any serve exit
	// path, before the graceful drain completes (SIGTERM semantics:
	// final checkpoint, then drain).
	finalCheckpoint func() error
}

// serve binds the main (and optional observability) listener, serves
// until ctx is cancelled or a listener fails, then shuts both down
// gracefully. It returns nil on a clean signal-driven stop.
func serve(ctx context.Context, o serveOpts) error {
	if o.shutdownTimeout <= 0 {
		o.shutdownTimeout = 10 * time.Second
	}
	// Register the SIGHUP relay before anything observable happens so a
	// "checkpoint now" sent right after startup is never fatal (SIGHUP
	// default disposition kills the process).
	var hup chan os.Signal
	if o.checkpointNow != nil {
		hup = make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		defer signal.Stop(hup)
	}
	// Readiness gate: recovery completes before any listener exists, so
	// the first accepted connection is guaranteed to see the recovered
	// (or deliberately cold) engine. See the regression test
	// TestServeReadinessGate.
	if o.warmStart != nil {
		if err := o.warmStart(); err != nil {
			return fmt.Errorf("state recovery: %w", err)
		}
	}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler: o.handler,
		// ReadHeaderTimeout and MaxHeaderBytes close the slowloris hole:
		// without them a client trickling header bytes holds a connection
		// (and under admission control, a precious slot) indefinitely.
		ReadHeaderTimeout: 5 * time.Second,
		MaxHeaderBytes:    64 << 10,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       60 * time.Second,
	}

	var obsLn net.Listener
	var obsSrv *http.Server
	if o.obsAddr != "" {
		obsLn, err = net.Listen("tcp", o.obsAddr)
		if err != nil {
			ln.Close()
			return err
		}
		obsSrv = &http.Server{
			Handler:           o.obsMux,
			ReadHeaderTimeout: 5 * time.Second,
			MaxHeaderBytes:    64 << 10,
			// pprof profile captures legitimately run for tens of
			// seconds, so the write timeout is generous here.
			ReadTimeout:  10 * time.Second,
			WriteTimeout: 2 * time.Minute,
			IdleTimeout:  60 * time.Second,
		}
	}
	if o.ready != nil {
		var oa net.Addr
		if obsLn != nil {
			oa = obsLn.Addr()
		}
		o.ready(ln.Addr(), oa)
	}

	// Everything spawned below is cancelled on return, so a listener
	// failure cannot strand the ticker or the sibling server.
	tctx, tcancel := context.WithCancel(ctx)
	defer tcancel()
	if o.governor != nil {
		go func() {
			t := time.NewTicker(time.Second)
			defer t.Stop()
			for {
				select {
				case <-tctx.Done():
					return
				case <-t.C:
					o.governor.Tick()
				}
			}
		}()
	}

	if o.checkpointNow != nil {
		go func() {
			var tick <-chan time.Time
			if o.checkpointInterval > 0 {
				t := time.NewTicker(o.checkpointInterval)
				defer t.Stop()
				tick = t.C
			}
			for {
				var reason string
				select {
				case <-tctx.Done():
					return
				case <-hup:
					reason = "sighup"
				case <-tick:
					reason = "interval"
				}
				if err := o.checkpointNow(); err != nil {
					o.log.Error("checkpoint failed", "reason", reason, "err", err)
				} else {
					o.log.Info("checkpoint written", "reason", reason)
				}
			}
		}()
	}

	servers := 1
	errCh := make(chan error, 2)
	go func() { errCh <- httpSrv.Serve(ln) }()
	if obsSrv != nil {
		servers++
		o.log.Info("observability listening", "addr", obsLn.Addr())
		go func() { errCh <- obsSrv.Serve(obsLn) }()
	}

	var serveErr error
	running := servers
	select {
	case <-ctx.Done():
		o.log.Info("shutting down", "reason", "signal")
	case err := <-errCh:
		running--
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			serveErr = err
		}
	}

	// Final checkpoint, then drain: persist before Shutdown so even a
	// drain that overruns its timeout cannot lose the frame. This is the
	// single call site — it lands exactly once per serve lifecycle.
	if o.finalCheckpoint != nil {
		if err := o.finalCheckpoint(); err != nil {
			o.log.Error("final checkpoint failed", "err", err)
		} else {
			o.log.Info("final checkpoint written")
		}
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), o.shutdownTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		o.log.Error("shutdown incomplete", "err", err)
	}
	if obsSrv != nil {
		_ = obsSrv.Shutdown(shutdownCtx)
	}
	// Reap the Serve goroutines so a graceful stop leaves nothing behind.
	for ; running > 0; running-- {
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) && serveErr == nil {
			serveErr = err
		}
	}
	return serveErr
}

// recoverState is the startup recovery ladder: newest frame, falling
// back through older last-good frames on corruption (the store walks
// those), then a cold start if nothing usable remains or the decoded
// state is rejected by the engine. Recovery failure is never fatal —
// the worst outcome is the same cold start a stateless specd always did.
func recoverState(eng *core.Engine, store *checkpoint.Store, log *slog.Logger) error {
	snap, info, err := store.Load()
	if err != nil {
		return err
	}
	if snap == nil {
		log.Info("checkpoint: cold start", "corrupt_skipped", info.Skipped)
		return nil
	}
	if err := eng.WarmStart(snap, time.Now()); err != nil {
		store.NoteColdStart()
		log.Warn("checkpoint: warm start rejected; continuing cold",
			"file", info.Path, "err", err)
		return nil
	}
	st := eng.Stats()
	log.Info("checkpoint: warm start",
		"file", info.Path, "corrupt_skipped", info.Skipped,
		"docs", st.Docs, "pairs", st.Pairs, "recorded", st.Recorded)
	return nil
}

// obsMux assembles the observability endpoints: Prometheus metrics,
// expvar, pprof, the span ring, and the attribution ledger.
func obsMux(led *attrib.Ledger) *http.ServeMux {
	m := http.NewServeMux()
	m.Handle("/metrics", obs.Default.Handler())
	m.Handle("/debug/vars", expvar.Handler())
	m.Handle("/debug/spans", obs.DefaultTracer.Handler())
	m.Handle("/debug/attrib", led.Handler())
	m.HandleFunc("/debug/pprof/", pprof.Index)
	m.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	m.HandleFunc("/debug/pprof/profile", pprof.Profile)
	m.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	m.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return m
}
