package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"specweb/internal/attrib"
	"specweb/internal/checkpoint"
	"specweb/internal/httpspec"
	"specweb/internal/leakcheck"
	"specweb/internal/obs"
	"specweb/internal/stats"
	"specweb/internal/webgraph"
)

// TestMain doubles as the specd helper process for the kill/restart
// harness: with SPECD_HELPER=1 the test binary IS specd — flag.Parse
// sees the args from SPECD_ARGS and main() runs for real, so SIGKILL
// hits an actual process with an actual state directory, not a mock.
func TestMain(m *testing.M) {
	if os.Getenv("SPECD_HELPER") == "1" {
		os.Args = append([]string{"specd"}, strings.Split(os.Getenv("SPECD_ARGS"), "\x1f")...)
		main()
		return
	}
	os.Exit(m.Run())
}

func newStoreBackedServer(t *testing.T) (*httpspec.Server, *checkpoint.Store, *webgraph.Site) {
	t.Helper()
	site, err := webgraph.Generate(webgraph.TinySite(), stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	cfg := httpspec.DefaultServerConfig()
	cfg.Metrics = obs.NewRegistry()
	cfg.Tracer = obs.NewTracer(32)
	cfg.Attrib = attrib.NewLedger(2*site.NumDocs(), cfg.Metrics)
	store, err := checkpoint.NewStore(checkpoint.StoreConfig{
		Dir: t.TempDir(), Fingerprint: cfg.Engine.StateFingerprint(),
		Metrics: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engine.Checkpoint = store
	srv, err := httpspec.NewServer(httpspec.NewSiteStore(site), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv, store, site
}

// TestServeFinalCheckpointExactlyOnce: the full lifecycle — cold-start
// recovery, serve, signal-driven stop — writes the final checkpoint
// exactly once, before the drain, and strands no goroutines.
func TestServeFinalCheckpointExactlyOnce(t *testing.T) {
	leakcheck.Check(t)
	srv, store, site := newStoreBackedServer(t)
	eng := srv.Engine()

	var finals atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrs := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- serve(ctx, serveOpts{
			addr:    "127.0.0.1:0",
			handler: srv,
			log:     obs.Logger("specd-test"),
			ready:   func(main, _ net.Addr) { addrs <- main },
			warmStart: func() error {
				return recoverState(eng, store, obs.Logger("specd-test"))
			},
			checkpointNow: func() error { return eng.CheckpointNow(time.Now()) },
			finalCheckpoint: func() error {
				finals.Add(1)
				return eng.CheckpointNow(time.Now())
			},
			shutdownTimeout: 5 * time.Second,
		})
	}()
	var addr net.Addr
	select {
	case addr = <-addrs:
	case err := <-done:
		t.Fatalf("serve exited before binding: %v", err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, site.Doc(site.Entries[0]).Path))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not return after cancel")
	}
	if got := finals.Load(); got != 1 {
		t.Fatalf("final checkpoint ran %d times, want exactly 1", got)
	}
	c := store.Counters()
	if c.Saved != 1 || c.SaveErrors != 0 {
		t.Fatalf("store counters after shutdown: %+v", c)
	}
	if c.ColdStarts != 1 { // empty state dir: recovery decided to start cold
		t.Fatalf("cold start not recorded: %+v", c)
	}
}

// TestServeReadinessGate: regression test for the startup ordering hole —
// the listener must not exist until state recovery has finished, so no
// client can ever reach a half-initialized engine.
func TestServeReadinessGate(t *testing.T) {
	leakcheck.Check(t)
	// Reserve a concrete port so we can probe it while recovery blocks.
	rsv, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := rsv.Addr().String()
	rsv.Close()

	gate := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- serve(ctx, serveOpts{
			addr:            addr,
			handler:         http.NotFoundHandler(),
			log:             obs.Logger("specd-test"),
			warmStart:       func() error { <-gate; return nil },
			ready:           func(net.Addr, net.Addr) { close(ready) },
			shutdownTimeout: 5 * time.Second,
		})
	}()

	// While recovery is in flight the port must be dark.
	for i := 0; i < 5; i++ {
		if conn, err := net.DialTimeout("tcp", addr, 100*time.Millisecond); err == nil {
			conn.Close()
			t.Fatal("listener accepted a connection before recovery finished")
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(gate)
	select {
	case <-ready:
	case err := <-done:
		t.Fatalf("serve exited: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("never became ready after recovery unblocked")
	}
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatalf("port still dark after ready: %v", err)
	}
	conn.Close()
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestServeSIGHUPCheckpointNow: SIGHUP means "checkpoint now", not die.
func TestServeSIGHUPCheckpointNow(t *testing.T) {
	leakcheck.Check(t)
	saved := make(chan struct{}, 8)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- serve(ctx, serveOpts{
			addr:            "127.0.0.1:0",
			handler:         http.NotFoundHandler(),
			log:             obs.Logger("specd-test"),
			checkpointNow:   func() error { saved <- struct{}{}; return nil },
			ready:           func(net.Addr, net.Addr) { close(ready) },
			shutdownTimeout: 5 * time.Second,
		})
	}()
	select {
	case <-ready:
	case err := <-done:
		t.Fatalf("serve exited: %v", err)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	select {
	case <-saved:
	case <-time.After(5 * time.Second):
		t.Fatal("SIGHUP did not trigger a checkpoint")
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("serve survived SIGHUP but failed later: %v", err)
	}
}

// specdStats is the slice of /spec/stats the harness cares about.
type specdStats struct {
	Engine struct {
		Pairs      int64
		Refreshes  int64
		Checkpoint *struct {
			Saved          int64 `json:"saved"`
			Loaded         int64 `json:"loaded"`
			CorruptSkipped int64 `json:"corrupt_skipped"`
			ColdStarts     int64 `json:"cold_starts"`
		}
	}
}

func scrapeSpecd(addr string) (specdStats, error) {
	var st specdStats
	resp, err := http.Get("http://" + addr + "/spec/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("stats: %s", resp.Status)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// TestSpecdKillRestartWarmRecovery is the process-level chaos test: run a
// real specd (this test binary re-execed via TestMain), train its engine
// over HTTP until a checkpoint lands, SIGKILL it mid-run — no drain, no
// final checkpoint — then restart from the same -state-dir and require
// the very first scrape to show a warm-started engine.
func TestSpecdKillRestartWarmRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level kill/restart harness")
	}
	dir := t.TempDir()
	rsv, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := rsv.Addr().String()
	rsv.Close()
	args := []string{
		"-addr", addr, "-profile", "tiny", "-seed", "7",
		"-state-dir", dir, "-refresh-every", "2s", "-checkpoint-retain", "3",
	}
	self, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	start := func() *exec.Cmd {
		cmd := exec.Command(self)
		cmd.Env = append(os.Environ(),
			"SPECD_HELPER=1", "SPECD_ARGS="+strings.Join(args, "\x1f"))
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		return cmd
	}
	waitUp := func(cmd *exec.Cmd) specdStats {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			if st, err := scrapeSpecd(addr); err == nil {
				return st
			}
			time.Sleep(50 * time.Millisecond)
		}
		cmd.Process.Kill()
		t.Fatal("specd never became reachable")
		return specdStats{}
	}

	// The parent regenerates the identical site (same profile, same seed)
	// to walk real document paths: entry page, then first-link hops.
	p, err := webgraph.ProfileByName("tiny")
	if err != nil {
		t.Fatal(err)
	}
	site, err := webgraph.Generate(p, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	var walk []string
	id := site.Entries[0]
	for i := 0; i < 4; i++ {
		walk = append(walk, site.Doc(id).Path)
		if links := site.Doc(id).Links; len(links) > 0 {
			id = links[0]
		} else {
			id = site.Entries[0]
		}
	}
	get := func(path string) {
		req, _ := http.NewRequest("GET", "http://"+addr+path, nil)
		req.Header.Set(httpspec.HeaderClient, "chaos-1")
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}

	first := start()
	waitUp(first)
	// Train in a burst, then go quiet past StrideTimeout (5s) so the
	// stride closes and the next refresh flushes it into the matrix:
	// an open stride is carried, never flushed, so uninterrupted
	// hammering would keep Pairs at zero forever.
	for i := 0; i < 60; i++ {
		for _, path := range walk {
			get(path)
		}
	}
	time.Sleep(5500 * time.Millisecond)
	var trained specdStats
	deadline := time.Now().Add(20 * time.Second)
	for {
		get(walk[0]) // Record-driven refresh (cadence 2s) flushes the closed stride
		st, err := scrapeSpecd(addr)
		if err == nil && st.Engine.Refreshes >= 1 && st.Engine.Pairs > 0 &&
			st.Engine.Checkpoint != nil && st.Engine.Checkpoint.Saved >= 1 {
			trained = st
			break
		}
		if time.Now().After(deadline) {
			first.Process.Kill()
			t.Fatalf("engine never checkpointed a trained estimate: %+v err=%v", st, err)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Crash: SIGKILL, so nothing graceful runs in the dying process.
	if err := first.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	first.Wait()

	second := start()
	defer func() {
		second.Process.Signal(syscall.SIGTERM)
		second.Wait()
	}()
	st := waitUp(second)
	// Recovery ran before the listener opened, so the FIRST successful
	// scrape must already show the warm state — no warm-up window.
	if st.Engine.Checkpoint == nil || st.Engine.Checkpoint.Loaded != 1 {
		t.Fatalf("restart did not warm-start from the checkpoint: %+v", st.Engine.Checkpoint)
	}
	if st.Engine.Pairs == 0 || st.Engine.Pairs != trained.Engine.Pairs {
		t.Fatalf("warm restart lost estimate state: pairs %d, trained %d",
			st.Engine.Pairs, trained.Engine.Pairs)
	}
	if st.Engine.Refreshes != 0 {
		t.Fatalf("pairs should come from recovery, not a fresh refresh: %+v", st.Engine)
	}
}
