package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"specweb/internal/attrib"
	"specweb/internal/httpspec"
	"specweb/internal/leakcheck"
	"specweb/internal/obs"
	"specweb/internal/stats"
	"specweb/internal/webgraph"
)

// TestServeGracefulShutdown runs the full specd lifecycle on ephemeral
// ports — bind main + observability listeners, answer on both, stop on
// context cancel — and proves a graceful stop closes both servers and
// strands no goroutines.
func TestServeGracefulShutdown(t *testing.T) {
	leakcheck.Check(t)

	site, err := webgraph.Generate(webgraph.TinySite(), stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	cfg := httpspec.DefaultServerConfig()
	cfg.Metrics = obs.NewRegistry()
	cfg.Tracer = obs.NewTracer(32)
	led := attrib.NewLedger(2*site.NumDocs(), cfg.Metrics)
	cfg.Attrib = led
	srv, err := httpspec.NewServer(httpspec.NewSiteStore(site), cfg)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrs := make(chan [2]net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- serve(ctx, serveOpts{
			addr:    "127.0.0.1:0",
			obsAddr: "127.0.0.1:0",
			handler: srv,
			obsMux:  obsMux(led),
			log:     obs.Logger("specd-test"),
			ready: func(main, obs net.Addr) {
				addrs <- [2]net.Addr{main, obs}
			},
			shutdownTimeout: 5 * time.Second,
		})
	}()

	var mainAddr, obsAddr net.Addr
	select {
	case a := <-addrs:
		mainAddr, obsAddr = a[0], a[1]
	case err := <-done:
		t.Fatalf("serve exited before binding: %v", err)
	}
	if obsAddr == nil {
		t.Fatal("observability listener not bound")
	}

	get := func(addr net.Addr, path string) string {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s%s: %v", addr, path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s%s: %s", addr, path, resp.Status)
		}
		return string(body)
	}
	if body := get(mainAddr, site.Doc(site.Entries[0]).Path); body == "" {
		t.Fatal("main listener served empty document")
	}
	if body := get(obsAddr, "/debug/spans"); !strings.Contains(body, "total") {
		t.Errorf("/debug/spans payload unexpected: %.80s", body)
	}
	if body := get(obsAddr, "/debug/attrib"); !strings.Contains(body, "totals") {
		t.Errorf("/debug/attrib payload unexpected: %.80s", body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v on graceful stop, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not return after cancel")
	}

	// Both listeners must actually be closed.
	for _, addr := range []net.Addr{mainAddr, obsAddr} {
		if _, err := http.Get(fmt.Sprintf("http://%s/", addr)); err == nil {
			t.Errorf("listener %s still answering after shutdown", addr)
		}
	}
}
