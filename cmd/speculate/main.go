// Command speculate runs the §3 trace-driven speculative-service
// simulations: the Figure 4 dependency histogram, the Figure 5/6 threshold
// sweep, the §3.3 headline operating points, and the §3.4 fine-tuning
// studies (stability, MaxSize, caching, cooperative clients, prefetching
// modes, and the closure ablation).
//
// Usage:
//
//	speculate -days 90 -rate 220 [-fig4] [-sweep] [-finetune] [-all]
package main

import (
	"flag"
	"fmt"
	"os"

	"specweb/internal/experiments"
)

func main() {
	var (
		days     = flag.Int("days", 90, "days of traffic")
		rate     = flag.Float64("rate", 220, "mean sessions per day")
		seed     = flag.Int64("seed", 1995, "random seed")
		small    = flag.Bool("small", false, "use the small test workload")
		fig4     = flag.Bool("fig4", false, "print the Figure 4 dependency histogram")
		sweep    = flag.Bool("sweep", false, "run the Figure 5/6 threshold sweep")
		finetune = flag.Bool("finetune", false, "run the §3.4 fine-tuning studies")
		all      = flag.Bool("all", false, "run everything")
		tp       = flag.Float64("tp", 0.25, "threshold for the fine-tuning studies")
	)
	flag.Parse()
	if *all {
		*fig4, *sweep, *finetune = true, true, true
	}
	if !*fig4 && !*sweep && !*finetune {
		*sweep = true
	}

	cfg := experiments.DefaultWorkload()
	if *small {
		cfg = experiments.SmallWorkload()
	}
	cfg.Days = *days
	cfg.SessionsPerDay = *rate
	cfg.Seed = *seed
	w, err := experiments.Build(cfg)
	if err != nil {
		fail(err)
	}
	fmt.Printf("workload: %d requests, %d clients over %d days\n\n",
		w.Trace.Len(), len(w.Trace.Clients()), cfg.Days)

	if *fig4 {
		res, err := experiments.Figure4(w, 20)
		if err != nil {
			fail(err)
		}
		fmt.Printf("== Figure 4: document pairs by p[i,j] (T_w = 5s; %d pairs over %d docs) ==\n",
			res.Pairs, res.Docs)
		fmt.Print(res.Histogram.Render(48))
		fmt.Printf("embedding peak (p≈1) holds %.1f%% of pairs\n\n", 100*res.EmbeddingMass)
	}

	if *sweep {
		pts, err := experiments.Figure5(w, nil)
		if err != nil {
			fail(err)
		}
		fmt.Println("== Figures 5–6: threshold sweep under baseline parameters ==")
		rows := make([][]string, 0, len(pts))
		for _, p := range pts {
			rows = append(rows, []string{
				fmt.Sprintf("%.2f", p.Tp),
				fmt.Sprintf("%+.1f%%", p.Ratios.TrafficIncreasePct()),
				fmt.Sprintf("-%.1f%%", p.Ratios.ServerLoadReductionPct()),
				fmt.Sprintf("-%.1f%%", p.Ratios.ServiceTimeReductionPct()),
				fmt.Sprintf("-%.1f%%", p.Ratios.MissRateReductionPct()),
				fmt.Sprintf("%d", p.SpeculatedDocs),
				fmt.Sprintf("%d", p.UsedDocs),
			})
		}
		if err := experiments.Table(os.Stdout,
			[]string{"Tp", "traffic", "load", "time", "miss", "pushed", "used"}, rows); err != nil {
			fail(err)
		}

		head, err := experiments.Headline(pts, nil)
		if err != nil {
			fail(err)
		}
		fmt.Println("\n== §3.3 headline operating points ==")
		hrows := make([][]string, 0, len(head))
		for _, h := range head {
			hrows = append(hrows, []string{
				fmt.Sprintf("%.0f%%", h.ExtraTrafficPct),
				fmt.Sprintf("-%.1f%%", h.LoadReduction),
				fmt.Sprintf("-%.1f%%", h.TimeReduction),
				fmt.Sprintf("-%.1f%%", h.MissReduction),
				fmt.Sprintf("%.2f", h.Tp),
			})
		}
		if err := experiments.Table(os.Stdout,
			[]string{"extra traffic", "load", "time", "miss", "≈Tp"}, hrows); err != nil {
			fail(err)
		}
		fmt.Println("paper: 5% → -30/-23/-18; 10% → -35/-27/-23; diminishing past ≈50%")
		fmt.Println()
	}

	if *finetune {
		runFinetune(w, *tp)
	}
}

func runFinetune(w *experiments.Workload, tp float64) {
	fmt.Println("== §3.4 stability: update cycle D and history D' ==")
	st, err := experiments.Stability(w, tp)
	if err != nil {
		fail(err)
	}
	rows := [][]string{}
	for _, r := range st {
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.UpdateCycleDays),
			fmt.Sprintf("%d", r.HistoryDays),
			r.Ratios.String(),
		})
	}
	must(experiments.Table(os.Stdout, []string{"D", "D'", "result"}, rows))

	fmt.Println("\n== §3.4 MaxSize sweep (joint with Tp) ==")
	ms, err := experiments.MaxSizeSweep(w, nil, nil)
	if err != nil {
		fail(err)
	}
	rows = rows[:0]
	for _, r := range ms {
		name := "∞"
		if r.MaxSize > 0 {
			name = experiments.FmtBytes(r.MaxSize)
		}
		rows = append(rows, []string{name, fmt.Sprintf("%.2f", r.Tp), r.Ratios.String()})
	}
	must(experiments.Table(os.Stdout, []string{"MaxSize", "Tp", "result"}, rows))
	for _, budget := range []float64{3, 10} {
		if best, err := experiments.BestMaxSize(ms, budget); err == nil {
			name := "∞"
			if best.MaxSize > 0 {
				name = experiments.FmtBytes(best.MaxSize)
			}
			fmt.Printf("best within %.0f%% extra traffic: MaxSize %s at Tp %.2f (%s)\n",
				budget, name, best.Tp, best.Ratios.String())
		}
	}

	fmt.Println("\n== §3.4 client caching variants ==")
	ct, err := experiments.CachingTable(w, tp)
	if err != nil {
		fail(err)
	}
	rows = rows[:0]
	for _, r := range ct {
		rows = append(rows, []string{r.Name, r.Ratios.String()})
	}
	must(experiments.Table(os.Stdout, []string{"cache model", "result"}, rows))

	fmt.Println("\n== §3.4 cooperative clients ==")
	co, err := experiments.Cooperative(w, nil)
	if err != nil {
		fail(err)
	}
	rows = rows[:0]
	for _, r := range co {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", r.Tp),
			r.Plain.String(),
			r.Cooperative.String(),
		})
	}
	must(experiments.Table(os.Stdout, []string{"Tp", "plain", "cooperative"}, rows))

	fmt.Println("\n== §3.4 delivery modes (push / hints / hybrid) ==")
	pf, err := experiments.PrefetchTable(w, tp)
	if err != nil {
		fail(err)
	}
	rows = rows[:0]
	for _, r := range pf {
		rows = append(rows, []string{
			r.Mode.String(),
			r.Ratios.String(),
			fmt.Sprintf("%d", r.SpeculatedDocs),
			fmt.Sprintf("%d", r.PrefetchedDocs),
		})
	}
	must(experiments.Table(os.Stdout, []string{"mode", "result", "pushed", "prefetched"}, rows))

	fmt.Println("\n== ablation: dependency matrix construction ==")
	ab, err := experiments.ClosureAblation(w, tp)
	if err != nil {
		fail(err)
	}
	rows = rows[:0]
	for _, r := range ab {
		rows = append(rows, []string{r.Name, r.Ratios.String()})
	}
	must(experiments.Table(os.Stdout, []string{"matrix", "result"}, rows))
}

func must(err error) {
	if err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "speculate:", err)
	os.Exit(1)
}
