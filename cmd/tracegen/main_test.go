package main

import (
	"bytes"
	"strings"
	"testing"

	"specweb/internal/experiments"
	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

// tinyArgs is a fast workload for CLI-level tests.
func tinyArgs(extra ...string) []string {
	args := []string{"-profile", "tiny", "-days", "2", "-rate", "30", "-seed", "7"}
	return append(args, extra...)
}

// TestStreamByteIdentity is satellite S1 at the command level: the
// -stream path must write exactly the bytes the buffered writer produces
// from materializing the identical stream.
func TestStreamByteIdentity(t *testing.T) {
	var got, stderr bytes.Buffer
	if code := run(tinyArgs("-stream"), &got, &stderr); code != 0 {
		t.Fatalf("run exited %d: %s", code, stderr.String())
	}

	cfg := experiments.DefaultWorkload()
	p, err := webgraph.ProfileByName("tiny")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Profile = p
	cfg.Days = 2
	cfg.SessionsPerDay = 30
	cfg.Seed = 7
	sw, err := experiments.BuildStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := trace.WriteCLF(&want, trace.Materialize(sw.Gen.Merged())); err != nil {
		t.Fatal(err)
	}
	if want.Len() == 0 {
		t.Fatal("empty oracle trace")
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("streamed CLI output diverged from buffered oracle (%d vs %d bytes)",
			got.Len(), want.Len())
	}
	if !strings.Contains(stderr.String(), "streamed from") {
		t.Errorf("stream summary missing: %q", stderr.String())
	}
}

// TestBufferedPathUnchanged pins the legacy default: without -stream the
// CLI still writes the materialized generator's trace.
func TestBufferedPathUnchanged(t *testing.T) {
	var got, stderr bytes.Buffer
	if code := run(tinyArgs(), &got, &stderr); code != 0 {
		t.Fatalf("run exited %d: %s", code, stderr.String())
	}

	cfg := experiments.DefaultWorkload()
	p, err := webgraph.ProfileByName("tiny")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Profile = p
	cfg.Days = 2
	cfg.SessionsPerDay = 30
	cfg.Seed = 7
	w, err := experiments.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := trace.WriteCLF(&want, w.Trace); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Error("default CLI output diverged from the materialized generator")
	}
}

// TestBadProfileExitCode: usage errors exit 2 without writing rows.
func TestBadProfileExitCode(t *testing.T) {
	var out, stderr bytes.Buffer
	if code := run([]string{"-profile", "nope"}, &out, &stderr); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if out.Len() != 0 {
		t.Error("rows written despite profile error")
	}
}
