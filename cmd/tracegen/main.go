// Command tracegen generates a synthetic access trace in Common Log Format,
// the stand-in for the 1995 cs-www.bu.edu logs that drove the paper's
// evaluation.
//
// Usage:
//
//	tracegen -profile department -days 90 -rate 220 -seed 1995 -o trace.log
package main

import (
	"flag"
	"fmt"
	"os"

	"specweb/internal/experiments"
	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

func main() {
	var (
		profile = flag.String("profile", "department", "site profile: department, media, or tiny")
		days    = flag.Int("days", 90, "days of traffic to generate")
		rate    = flag.Float64("rate", 220, "mean sessions per day")
		seed    = flag.Int64("seed", 1995, "random seed")
		noise   = flag.Float64("noise", 0, "fraction of junk requests (404s, scripts, aliases) to interleave")
		out     = flag.String("o", "-", "output file (- for stdout)")
	)
	flag.Parse()

	cfg := experiments.DefaultWorkload()
	p, err := webgraph.ProfileByName(*profile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(2)
	}
	cfg.Profile = p
	cfg.Days = *days
	cfg.SessionsPerDay = *rate
	cfg.Seed = *seed
	cfg.Noise = *noise

	w, err := experiments.Build(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}

	dst := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		defer f.Close()
		dst = f
	}
	if err := trace.WriteCLF(dst, w.Trace); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d requests, %d clients, %d docs on site, %s total\n",
		w.Trace.Len(), len(w.Trace.Clients()), w.Site.NumDocs(),
		experiments.FmtBytes(w.Site.TotalBytes()))
}
