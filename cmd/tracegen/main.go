// Command tracegen generates a synthetic access trace in Common Log Format,
// the stand-in for the 1995 cs-www.bu.edu logs that drove the paper's
// evaluation.
//
// Usage:
//
//	tracegen -profile department -days 90 -rate 220 -seed 1995 -o trace.log
//
// With -stream the rows are written as they are generated from per-client
// seeded cursors — O(clients) memory instead of O(trace) — byte-identical
// to materializing that same stream and writing it buffered. The streamed
// generator is a distinct (statistically equivalent) trace process from
// the default one, so -stream changes the bytes relative to the default
// path; it does not change them relative to itself.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"specweb/internal/experiments"
	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body: flags in, exit code out, with the CLF rows
// going to stdout (or -o) and the human summary to stderr.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		profile = fs.String("profile", "department", "site profile: department, media, or tiny")
		days    = fs.Int("days", 90, "days of traffic to generate")
		rate    = fs.Float64("rate", 220, "mean sessions per day")
		seed    = fs.Int64("seed", 1995, "random seed")
		noise   = fs.Float64("noise", 0, "fraction of junk requests (404s, scripts, aliases) to interleave")
		stream  = fs.Bool("stream", false, "stream rows from per-client seeded cursors (O(clients) memory; a distinct, statistically equivalent trace)")
		out     = fs.String("o", "-", "output file (- for stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := experiments.DefaultWorkload()
	p, err := webgraph.ProfileByName(*profile)
	if err != nil {
		fmt.Fprintln(stderr, "tracegen:", err)
		return 2
	}
	cfg.Profile = p
	cfg.Days = *days
	cfg.SessionsPerDay = *rate
	cfg.Seed = *seed
	cfg.Noise = *noise

	dst := stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "tracegen:", err)
			return 1
		}
		defer f.Close()
		dst = f
	}

	if *stream {
		sw, err := experiments.BuildStream(cfg)
		if err != nil {
			fmt.Fprintln(stderr, "tracegen:", err)
			return 1
		}
		n, err := trace.WriteCLFStream(dst, sw.Gen.Merged())
		if err != nil {
			fmt.Fprintln(stderr, "tracegen:", err)
			return 1
		}
		fmt.Fprintf(stderr, "tracegen: %d requests streamed from %d client cursors, %d docs on site, %s total\n",
			n, sw.Gen.NumClients(), sw.Site.NumDocs(),
			experiments.FmtBytes(sw.Site.TotalBytes()))
		return 0
	}

	w, err := experiments.Build(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "tracegen:", err)
		return 1
	}
	if err := trace.WriteCLF(dst, w.Trace); err != nil {
		fmt.Fprintln(stderr, "tracegen:", err)
		return 1
	}
	fmt.Fprintf(stderr, "tracegen: %d requests, %d clients, %d docs on site, %s total\n",
		w.Trace.Len(), len(w.Trace.Clients()), w.Site.NumDocs(),
		experiments.FmtBytes(w.Site.TotalBytes()))
	return 0
}
